"""The three traffic workloads, each with a serial-numpy oracle.

Every workload turns a GA computation into a stream of *idempotent*
request payloads so the front-end's at-least-once delivery (retries,
re-execution after checkpoint rollback) is value-safe:

* :class:`StencilWorkload` — ghost-cell stencil: each request fetches a
  row band of a read-only input array plus a one-cell halo and writes
  :func:`repro.ga.ghosts.jacobi_sweep` of it into an output array.
  (The collective ``GhostArray.update_ghosts`` exchange has no place in
  a request-at-a-time service loop, so requests assemble their halo
  with one-sided gets — same math, same ghost widths.)
* :class:`WorkStealWorkload` — work stealing on the GA NXTVAL counter
  (:class:`repro.ga.counters.SharedCounter`): arrivals *are* counter
  draws, so fast ranks draw more — and admission is pull-based: a rank
  only draws into free queue capacity, which is the work-stealing form
  of backpressure (tasks are never shed at admission, only by deadline
  or kill).
* :class:`BfsWorkload` — BFS by monotone label correction on an
  irregularly distributed level array
  (:func:`repro.ga.irregular.create_irregular`): a request re-relaxes
  one owned vertex from its neighbours' levels (owner-computes, so no
  write races); improvements are gossiped through the harness's
  per-tick status exchange to re-dirty neighbours.  Shed or expired
  requests simply re-dirty their vertex — the fixed point (exact serial
  BFS levels) is reached regardless of how much load was dropped.

State is rebuilt from a replicated checkpoint after ULFM recovery:
``checkpoint()`` captures the mutable arrays plus the completed-set /
counter watermark, ``restore()`` recreates everything on the shrunken
world (read-only inputs are regenerated from the seed instead of being
checkpointed).
"""

from __future__ import annotations

import numpy as np

from ..ga.array import GlobalArray
from ..ga.counters import SharedCounter
from ..ga.ghosts import jacobi_sweep
from ..ga.irregular import create_irregular

__all__ = [
    "BfsWorkload",
    "StencilWorkload",
    "WORKLOADS",
    "WorkStealWorkload",
    "make_workload",
]

#: unreachable-vertex sentinel for the BFS levels array
BFS_INF = 2**31


def _fill_own_block(ga: GlobalArray, full: "np.ndarray | None") -> None:
    """Owner-computes fill: each rank writes its block from ``full``
    (or zeros when ``full`` is None), then syncs."""
    block = ga.distribution()
    if block.size:
        view = ga.access()
        if full is None:
            view[...] = 0
        else:
            view[...] = full[tuple(slice(lo, hi) for lo, hi in zip(block.lo, block.hi))]
        ga.release()
    ga.sync()


class StencilWorkload:
    """Ghost-cell stencil tiles over a seeded input array (push-based)."""

    name = "stencil"
    pull_based = False

    def __init__(self, seed: int, size: int = 0):
        self.seed = seed
        self.rows = size or 20
        self.cols = self.rows
        self.tile_rows = 2
        self.ntiles = self.rows // self.tile_rows

    # -- deterministic read-only inputs (recomputed, never checkpointed) ----
    def _base(self) -> np.ndarray:
        rng = np.random.default_rng(self.seed ^ 0x57E4C11)
        return rng.random((self.rows, self.cols))

    def _oracle(self) -> np.ndarray:
        return jacobi_sweep(np.pad(self._base(), 1))

    def setup(self, armci) -> dict:
        base = self._base()
        ga_in = GlobalArray.create(armci, base.shape, "f8", name="traffic_in")
        _fill_own_block(ga_in, base)
        ga_out = GlobalArray.create(armci, base.shape, "f8", name="traffic_out")
        _fill_own_block(ga_out, None)
        return {"in": ga_in, "out": ga_out, "inflight": set()}

    def generate(self, state, rank, nproc, tick, rng, limit, completed) -> list:
        todo = [
            (t,)
            for t in range(self.ntiles)
            if t % nproc == rank
            and (t,) not in completed
            and (t,) not in state["inflight"]
        ]
        picked = todo[:limit]
        state["inflight"].update(picked)
        return picked

    def on_rejected(self, state, payload) -> None:
        state["inflight"].discard(payload)

    def execute(self, state, payload) -> list:
        (t,) = payload
        lo, hi = t * self.tile_rows, (t + 1) * self.tile_rows
        halo = np.zeros((self.tile_rows + 2, self.cols + 2))
        glo, ghi = max(lo - 1, 0), min(hi + 1, self.rows)
        patch = state["in"].get([glo, 0], [ghi, self.cols])
        halo[glo - (lo - 1) : ghi - (lo - 1), 1:-1] = patch
        state["out"].put([lo, 0], [hi, self.cols], jacobi_sweep(halo))
        state["inflight"].discard(payload)
        return []

    def apply_effects(self, state, rank, nproc, effects) -> None:
        pass

    def watermark(self, state) -> int:
        return 0

    def exhausted(self, state, rank, nproc, completed) -> bool:
        return all(
            (t,) in completed for t in range(self.ntiles) if t % nproc == rank
        )

    def checkpoint(self, state, completed, watermark) -> dict:
        return {
            "out": state["out"].checkpoint(),
            "completed": frozenset(completed),
            "watermark": watermark,
        }

    def restore(self, armci, ckpt) -> dict:
        ga_in = GlobalArray.create(armci, (self.rows, self.cols), "f8",
                                   name="traffic_in")
        _fill_own_block(ga_in, self._base())
        ga_out = GlobalArray.restore(armci, ckpt["out"])
        return {"in": ga_in, "out": ga_out, "inflight": set()}

    def verify(self, state, completed) -> bool:
        got = state["out"].get([0, 0], [self.rows, self.cols])
        expect = np.zeros((self.rows, self.cols))
        oracle = self._oracle()
        for (t,) in completed:
            lo, hi = t * self.tile_rows, (t + 1) * self.tile_rows
            expect[lo:hi] = oracle[lo:hi]
        return bool(np.array_equal(got, expect))


class WorkStealWorkload:
    """NXTVAL work stealing: arrivals are atomic counter draws (pull-based)."""

    name = "worksteal"
    pull_based = True

    def __init__(self, seed: int, size: int = 0):
        self.seed = seed
        self.ntasks = size or 28

    @staticmethod
    def _value(t: int) -> int:
        return t * t + 3 * t + 7

    def setup(self, armci) -> dict:
        counter = SharedCounter(armci)
        counter.reset(0)
        ga = GlobalArray.create(armci, (self.ntasks,), "i8", name="traffic_tasks")
        _fill_own_block(ga, None)
        return {"counter": counter, "ga": ga}

    def generate(self, state, rank, nproc, tick, rng, limit, completed) -> list:
        drawn = []
        if state.get("dry"):
            return drawn
        for _ in range(limit):
            t = state["counter"].next()
            if t >= self.ntasks:
                state["dry"] = True
                state["hwm"] = self.ntasks
                break
            state["hwm"] = max(int(state.get("hwm", 0)), t + 1)
            if (t,) in completed:
                # re-drawn after a rollback to the completion frontier;
                # already done everywhere, skip instead of re-executing
                continue
            drawn.append((t,))
        return drawn

    def on_rejected(self, state, payload) -> None:
        # a drawn-then-dropped task is lost load: the oracle is over the
        # completed set, so nothing to roll back
        pass

    def execute(self, state, payload) -> list:
        (t,) = payload
        state["ga"].put([t], [t + 1], np.array([self._value(t)], dtype="i8"))
        return []

    def apply_effects(self, state, rank, nproc, effects) -> None:
        pass

    def exhausted(self, state, rank, nproc, completed) -> bool:
        # set by generate() on the first draw past the end; until this
        # rank has personally drawn past the end it keeps offering, so
        # no extra counter reads are needed per tick
        return bool(state.get("dry"))

    def watermark(self, state) -> int:
        """Highest counter value this rank has seen (folded to a global
        max through the per-tick status exchange, purely informational)."""
        return min(int(state.get("hwm", 0)), self.ntasks)

    def checkpoint(self, state, completed, watermark) -> dict:
        # the restore point must re-issue every drawn-but-uncompleted
        # task (they are shed from the queue at recovery), so record the
        # completion *frontier* — the first gap — not the draw
        # high-water-mark; generate() skips the completed tasks between
        # the frontier and the hwm when they come around again
        frontier = 0
        while frontier < self.ntasks and (frontier,) in completed:
            frontier += 1
        return {
            "ga": state["ga"].checkpoint(),
            "completed": frozenset(completed),
            "watermark": frontier,
        }

    def restore(self, armci, ckpt) -> dict:
        counter = SharedCounter(armci)
        counter.reset(ckpt["watermark"])
        ga = GlobalArray.restore(armci, ckpt["ga"])
        return {"counter": counter, "ga": ga}

    def verify(self, state, completed) -> bool:
        got = state["ga"].get([0], [self.ntasks])
        expect = np.zeros(self.ntasks, dtype="i8")
        for (t,) in completed:
            expect[t] = self._value(t)
        return bool(np.array_equal(got, expect))


class BfsWorkload:
    """Asynchronous BFS label correction on an irregular distribution."""

    name = "bfs"
    pull_based = False

    def __init__(self, seed: int, size: int = 0):
        self.seed = seed
        self.n = size or 36

    # -- deterministic read-only inputs -------------------------------------
    def _graph(self) -> "list[list[int]]":
        rng = np.random.default_rng((self.seed << 1) ^ 0xACE5)
        adj: list[set] = [set() for _ in range(self.n)]
        for _ in range(2 * self.n):
            a = int(rng.integers(0, self.n))
            b = int(rng.integers(0, self.n))
            if a != b:
                adj[a].add(b)
                adj[b].add(a)
        return [sorted(s) for s in adj]

    def _boundaries(self, nproc: int) -> "list[int]":
        rng = np.random.default_rng(self.seed ^ 0xB0F5)
        marks = [0]
        for i in range(1, nproc):
            ideal = i * self.n // nproc
            span = max(1, self.n // (4 * nproc))
            m = int(ideal + rng.integers(-span, span + 1))
            marks.append(max(marks[-1] + 1, min(m, self.n - (nproc - i))))
        return marks

    def _oracle(self) -> np.ndarray:
        adj = self._graph()
        levels = np.full(self.n, BFS_INF, dtype="i8")
        levels[0] = 0
        frontier = [0]
        depth = 0
        while frontier:
            depth += 1
            nxt = []
            for u in frontier:
                for w in adj[u]:
                    if levels[w] > depth:
                        levels[w] = depth
                        nxt.append(w)
            frontier = nxt
        return levels

    def _owned(self, ga: GlobalArray, rank: int) -> "tuple[int, int]":
        block = ga.distribution(rank)
        if not block.size:
            return (0, 0)
        return (block.lo[0], block.hi[0])

    def setup(self, armci) -> dict:
        levels = create_irregular(
            armci, (self.n,), [self._boundaries(armci.nproc)],
            dtype="i8", name="traffic_levels",
        )
        init = np.full(self.n, BFS_INF, dtype="i8")
        init[0] = 0
        _fill_own_block(levels, init)
        lo, hi = self._owned(levels, armci.my_id)
        return {
            "levels": levels,
            "adj": self._graph(),
            "dirty": set(range(lo, hi)) - {0},
            "inflight": set(),
        }

    def generate(self, state, rank, nproc, tick, rng, limit, completed) -> list:
        picked = [(u,) for u in sorted(state["dirty"])[:limit]]
        for p in picked:
            state["dirty"].discard(p[0])
            state["inflight"].add(p)
        return picked

    def on_rejected(self, state, payload) -> None:
        state["inflight"].discard(payload)
        state["dirty"].add(payload[0])

    def execute(self, state, payload) -> list:
        (u,) = payload
        ga = state["levels"]
        nbrs = state["adj"][u]
        state["inflight"].discard(payload)
        if not nbrs:
            return []
        best = min(int(ga.get([w], [w + 1])[0]) for w in nbrs) + 1
        if best < int(ga.get([u], [u + 1])[0]):
            ga.put([u], [u + 1], np.array([best], dtype="i8"))
            return [(u, best)]
        return []

    def apply_effects(self, state, rank, nproc, effects) -> None:
        lo, hi = self._owned(state["levels"], rank)
        for (v, _lvl) in effects:
            for w in state["adj"][v]:
                if lo <= w < hi and w != 0 and (w,) not in state["inflight"]:
                    state["dirty"].add(w)

    def watermark(self, state) -> int:
        return 0

    def exhausted(self, state, rank, nproc, completed) -> bool:
        return not state["dirty"]

    def checkpoint(self, state, completed, watermark) -> dict:
        return {
            "levels": state["levels"].checkpoint(),
            "completed": frozenset(completed),
            "watermark": watermark,
        }

    def restore(self, armci, ckpt) -> dict:
        snap = np.asarray(ckpt["levels"].data)
        levels = create_irregular(
            armci, (self.n,), [self._boundaries(armci.nproc)],
            dtype="i8", name="traffic_levels",
        )
        _fill_own_block(levels, snap)
        lo, hi = self._owned(levels, armci.my_id)
        # monotone labels: re-dirtying every owned vertex is always safe
        return {
            "levels": levels,
            "adj": self._graph(),
            "dirty": set(range(lo, hi)) - {0},
            "inflight": set(),
        }

    def verify(self, state, completed) -> bool:
        got = state["levels"].get([0], [self.n])
        return bool(np.array_equal(got, self._oracle()))


WORKLOADS = {
    "stencil": StencilWorkload,
    "worksteal": WorkStealWorkload,
    "bfs": BfsWorkload,
}


def make_workload(scenario: str, seed: int, size: int = 0):
    if scenario not in WORKLOADS:
        raise ValueError(f"unknown traffic scenario {scenario!r}; "
                         f"have {sorted(WORKLOADS)}")
    return WORKLOADS[scenario](seed, size)
