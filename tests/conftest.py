"""Shared test helpers: SPMD execution with fast deadlock watchdogs.

``pytest --sanitize`` (or the ``sanitize`` marker on a test) installs
the :mod:`repro.sanitizer` ambiently for the covered tests: every
runtime they create gets an :class:`~repro.sanitizer.RmaSanitizer`, so
the whole tier-1 suite doubles as the sanitizer's zero-false-positive
regression gate.  ``pytest --faults`` (or the ``faults`` marker) does
the same for :mod:`repro.faults` with a benign empty plan: every fuzz
point and RMA payload is routed through the fault injector without
changing any outcome.  ``pytest --lint`` (or the ``lint`` marker) runs
:mod:`repro.lint` over each covered test's own module and fails the
test if the static analyzer finds anything its suppressions don't
cover — the static twin of the ``--sanitize`` gate.
"""

from __future__ import annotations

import pytest

from repro.mpi.runtime import Runtime


def pytest_addoption(parser):
    parser.addoption(
        "--sanitize",
        action="store_true",
        default=False,
        help="run every test with the RMA sanitizer installed ambiently",
    )
    parser.addoption(
        "--faults",
        action="store_true",
        default=False,
        help="run every test with the fault-injection plumbing installed "
        "ambiently (a benign empty plan: exercises the injector hooks on "
        "every fuzz point and RMA payload without changing outcomes)",
    )
    parser.addoption(
        "--lint",
        action="store_true",
        default=False,
        help="run repro.lint over each test's own module and fail the "
        "test on any static finding (cached once per file)",
    )


def spmd(nproc, fn, *args, watchdog_s: float = 0.4, **kw):
    """Run ``fn(comm, *args)`` on ``nproc`` simulated ranks and return the
    per-rank results.  A short watchdog keeps deadlock tests fast."""
    return Runtime(nproc, watchdog_s=watchdog_s).spmd(fn, *args, **kw)


@pytest.fixture
def run4():
    """Fixture form of :func:`spmd` pinned to 4 ranks."""

    def _run(fn, *args, **kw):
        return spmd(4, fn, *args, **kw)

    return _run


@pytest.fixture(autouse=True)
def _ambient_sanitize(request):
    """Install the ambient sanitizer for --sanitize runs / marked tests."""
    if not (
        request.config.getoption("--sanitize")
        or request.node.get_closest_marker("sanitize") is not None
    ):
        yield
        return
    from repro.sanitizer import install_ambient, uninstall_ambient

    token = install_ambient()
    try:
        yield
    finally:
        uninstall_ambient(token)


@pytest.fixture(autouse=True)
def _ambient_faults(request):
    """Install the ambient fault plumbing for --faults runs / marked tests."""
    if not (
        request.config.getoption("--faults")
        or request.node.get_closest_marker("faults") is not None
    ):
        yield
        return
    from repro.faults import install_ambient, uninstall_ambient

    token = install_ambient()
    try:
        yield
    finally:
        uninstall_ambient(token)


_LINT_CACHE: dict = {}


@pytest.fixture(autouse=True)
def _ambient_lint(request):
    """Lint the test's own module for --lint runs / marked tests."""
    if not (
        request.config.getoption("--lint")
        or request.node.get_closest_marker("lint") is not None
    ):
        yield
        return
    path = str(getattr(request.node, "fspath", "") or "")
    if path.endswith(".py"):
        if path not in _LINT_CACHE:
            from repro.lint import lint_file

            _LINT_CACHE[path] = lint_file(path)
        diags = _LINT_CACHE[path]
        if diags:
            pytest.fail(
                "repro.lint findings in this test's module:\n"
                + "\n".join(d.format() for d in diags),
                pytrace=False,
            )
    yield


@pytest.fixture
def sanitize():
    """Explicit form: yields a fresh ambient RmaSanitizer installer.

    The fixture value is a callable ``install(mode=..., check_nonstrict=...)``
    that (re)installs the ambient sanitizer with those options for the
    remainder of the test and returns nothing; runtimes created afterwards
    carry a sanitizer configured that way.
    """
    from repro.sanitizer import install_ambient, uninstall_ambient

    tokens = [install_ambient()]

    def install(mode: str = "raise", check_nonstrict: bool = False):
        uninstall_ambient(tokens.pop())
        tokens.append(install_ambient(mode=mode, check_nonstrict=check_nonstrict))

    try:
        yield install
    finally:
        for t in tokens:
            uninstall_ambient(t)
