"""Shared test helpers: SPMD execution with fast deadlock watchdogs."""

from __future__ import annotations

import pytest

from repro.mpi.runtime import Runtime


def spmd(nproc, fn, *args, watchdog_s: float = 0.4, **kw):
    """Run ``fn(comm, *args)`` on ``nproc`` simulated ranks and return the
    per-rank results.  A short watchdog keeps deadlock tests fast."""
    return Runtime(nproc, watchdog_s=watchdog_s).spmd(fn, *args, **kw)


@pytest.fixture
def run4():
    """Fixture form of :func:`spmd` pinned to 4 ranks."""

    def _run(fn, *args, **kw):
        return spmd(4, fn, *args, **kw)

    return _run
