from repro.armci import Armci


def body(comm):
    armci = Armci.init(comm)
    ptrs = armci.malloc(64)
    armci.access_begin(ptrs[0], 8)
    armci.access_begin(ptrs[0], 8)  # expect: dla
    armci.access_end(ptrs[0])
    armci.free(ptrs[armci.my_id])
