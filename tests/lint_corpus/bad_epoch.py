from repro.mpi import Win


def body(comm, buf):
    win, _ = Win.allocate(comm, 64)
    comm.barrier()
    win.put(buf, 1)  # expect: epoch
