from repro.mpi import Win


def body(comm):
    win, _ = Win.allocate(comm, 64, mpi3=True)
    comm.barrier()
    win.flush(1)  # expect: flush
