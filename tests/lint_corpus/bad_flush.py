from repro.mpi import Win


def body(comm):
    win, _ = Win.allocate(comm, 64, mpi3=True)
    comm.barrier()
    win.flush(1)  # expect: flush


def inside_fence(comm, buf):
    win, _ = Win.allocate(comm, 64, mpi3=True)
    win.fence_sync()
    win.put(buf, 1)
    win.flush(1)  # expect: flush
    win.fence_sync(end=True)
