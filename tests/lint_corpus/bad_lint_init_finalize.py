from repro.armci import Armci


def body(comm):
    armci = Armci.init(comm)
    armci.finalize()
    armci.barrier()  # expect: lint-init-finalize
