from repro.armci import Armci


def body(comm):
    armci = Armci.init(comm)
    ptrs = armci.malloc(64)  # expect: lint-leak
    armci.barrier()
    del ptrs
