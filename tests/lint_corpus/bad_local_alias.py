from repro.mpi import Win


def body(comm):
    win, _ = Win.allocate(comm, 64)
    comm.barrier()
    mine = win.exposed_buffer()
    win.lock(1)
    win.put(mine, 1)  # expect: local-alias
    win.unlock(1)
