from repro.mpi import Win


def body(comm):
    win, _ = Win.allocate(comm, 64)
    comm.barrier()
    view = win.local_view()  # expect: local-load-store
    view[0] = 1
