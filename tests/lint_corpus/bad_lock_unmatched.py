from repro.mpi import Win


def body(comm):
    win, _ = Win.allocate(comm, 64)
    comm.barrier()
    win.unlock(0)  # expect: lock-unmatched
