from repro.armci import Armci


def body(comm, buf):
    armci = Armci.init(comm)
    ptrs = armci.malloc(64)
    armci.access_begin(ptrs[0], 8)
    armci.put(buf, ptrs[1], 8)  # expect: lock-while-dla
    armci.access_end(ptrs[0])
    armci.free(ptrs[armci.my_id])
