from repro.armci import Armci


def discarded(comm, src):
    armci = Armci.init(comm, datapath="mpi3")
    ptrs = armci.malloc(64)
    armci.nb_put(src, ptrs[1], 64)  # expect: nb-pending
    armci.barrier()
    armci.free(ptrs[armci.my_id])
    armci.finalize()


def pending_at_finalize(comm, src):
    armci = Armci.init(comm, datapath="mpi3")
    ptrs = armci.malloc(64)
    h = armci.nb_put(src, ptrs[1], 64)
    armci.free(ptrs[armci.my_id])
    armci.finalize()  # expect: nb-pending
    del h


def leaked_at_return(comm, src):
    armci = Armci.init(comm, datapath="mpi3")
    ptrs = armci.malloc(64)
    h = armci.nb_get(ptrs[1], src, 64)  # expect: nb-pending
    armci.free(ptrs[armci.my_id])
    del h
