"""Backend-owned window lifetimes are not leaks — a corpus note.

The proc backend (``repro.mpi.backend_proc``) creates windows whose
shared-memory segments outlive the creating function: ``win_create``
hands the window to the backend's registry and ``release_windows()``
frees every registered window at rank teardown.  No ``lint-ignore`` is
needed for this pattern; the engine's escape analysis already covers
it by design (see docs/lint.md, "How it analyzes"):

* a tracked resource stored into an attribute or container leaves the
  function's leak obligations — ownership has transferred to the
  registry (``register_backend_window`` below);
* objects the function did not construct (parameters, registry
  entries) are of unknown provenance and exempt from the
  double-release and leak rules (``release_backend_windows`` below).

If a refactor ever makes these fire, prefer restoring the
ownership-transfer shape over sprinkling ``lint-ignore[lint-leak]``.
"""


def register_backend_window(comm, backend, local):
    from repro.mpi.window import Win

    win = Win.create(comm, local, disp_unit=8)
    backend.windows.append(win)  # ownership transfers to the registry


def release_backend_windows(backend):
    # registry entries were constructed elsewhere: unknown provenance,
    # so freeing them here is exempt from double-release tracking
    for win in backend.windows:
        win.free()
