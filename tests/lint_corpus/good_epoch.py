from repro.mpi import Win


def body(comm, buf):
    win, _ = Win.allocate(comm, 64)
    comm.barrier()
    win.lock(1)
    win.put(buf, 1)
    win.unlock(1)
