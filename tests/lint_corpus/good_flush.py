from repro.mpi import Win


def body(comm, buf):
    win, _ = Win.allocate(comm, 64, mpi3=True)
    comm.barrier()
    win.lock_all()
    win.put(buf, 1)
    win.flush(1)
    win.unlock_all()


def per_target_lock(comm, buf):
    win, _ = Win.allocate(comm, 64, mpi3=True)
    comm.barrier()
    win.lock(1)
    win.put(buf, 1)
    win.flush(1)
    win.unlock(1)
