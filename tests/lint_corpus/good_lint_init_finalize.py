from repro.armci import Armci


def body(comm):
    armci = Armci.init(comm)
    armci.barrier()
    armci.finalize()
