from repro.armci import Armci


def body(comm):
    armci = Armci.init(comm)
    ptrs = armci.malloc(64)
    armci.barrier()
    armci.free(ptrs[armci.my_id])
