from repro.mpi import Win


def body(comm):
    win, _ = Win.allocate(comm, 64)
    comm.barrier()
    staged = win.exposed_buffer().copy()  # private staging copy
    win.lock(1)
    win.put(staged, 1)
    win.unlock(1)
