from repro.mpi import LOCK_EXCLUSIVE, Win


def body(comm):
    win, _ = Win.allocate(comm, 64)
    comm.barrier()
    win.lock(comm.rank, LOCK_EXCLUSIVE)
    view = win.local_view()
    view[0] = 1
    win.unlock(comm.rank)
