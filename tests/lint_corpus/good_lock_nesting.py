from repro.mpi import Win


def body(comm):
    win, _ = Win.allocate(comm, 64)
    comm.barrier()
    win.lock(0)
    win.unlock(0)
    win.lock(1)
    win.unlock(1)
