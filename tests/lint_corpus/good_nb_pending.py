from repro.armci import Armci


def waited(comm, src):
    armci = Armci.init(comm, datapath="mpi3")
    ptrs = armci.malloc(64)
    h = armci.nb_put(src, ptrs[1], 64)
    h.wait()
    armci.free(ptrs[armci.my_id])
    armci.finalize()


def drained_by_fence(comm, src):
    armci = Armci.init(comm, datapath="mpi3")
    ptrs = armci.malloc(64)
    h = armci.nb_get(ptrs[1], src, 64)
    armci.fence(1)
    armci.free(ptrs[armci.my_id])
    armci.finalize()
    del h


def drained_by_barrier(comm, src):
    armci = Armci.init(comm, datapath="mpi3")
    ptrs = armci.malloc(64)
    h = armci.nb_acc(src, ptrs[1], 64)
    armci.barrier()
    armci.free(ptrs[armci.my_id])
    armci.finalize()
    del h


def polled(comm, src):
    armci = Armci.init(comm, datapath="mpi3")
    ptrs = armci.malloc(64)
    h = armci.nb_put(src, ptrs[1], 64)
    while not h.test():
        pass
    armci.free(ptrs[armci.my_id])
    armci.finalize()
