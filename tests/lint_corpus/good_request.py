from repro.mpi import Win


def body(comm, buf):
    win, _ = Win.allocate(comm, 64, mpi3=True)
    comm.barrier()
    win.lock(1)
    req = win.rput(buf, 1)
    req.wait()
    win.unlock(1)
