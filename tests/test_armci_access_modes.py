"""Tests for §VIII-A access-mode hints: shared locks where promises allow."""

from __future__ import annotations

import numpy as np
import pytest

from repro.armci import AccessMode, Armci
from repro.mpi.errors import ArgumentError
from repro.mpi.window import LOCK_EXCLUSIVE, LOCK_SHARED

from conftest import spmd


def test_mode_allows_table():
    assert AccessMode.DEFAULT.allows("put")
    assert AccessMode.READ_ONLY.allows("get")
    assert not AccessMode.READ_ONLY.allows("put")
    assert not AccessMode.READ_ONLY.allows("acc")
    assert AccessMode.ACC_ONLY.allows("acc")
    assert not AccessMode.ACC_ONLY.allows("get")
    assert AccessMode.CONFLICT_FREE.allows("put")


def test_lock_mode_selection():
    assert AccessMode.DEFAULT.lock_mode("get") == LOCK_EXCLUSIVE
    assert AccessMode.READ_ONLY.lock_mode("get") == LOCK_SHARED
    assert AccessMode.ACC_ONLY.lock_mode("acc") == LOCK_SHARED
    assert AccessMode.CONFLICT_FREE.lock_mode("put") == LOCK_SHARED
    # RMW and DLA stay exclusive regardless
    assert AccessMode.CONFLICT_FREE.lock_mode("rmw") == LOCK_EXCLUSIVE
    assert AccessMode.CONFLICT_FREE.lock_mode("dla") == LOCK_EXCLUSIVE


def test_read_only_phase_concurrent_gets():
    """All ranks get from one hot slab concurrently under shared locks.

    Under DEFAULT this serialises through exclusive epochs; under
    READ_ONLY it does not — and the strict window verifies no conflict
    arises (gets never conflict with gets)."""

    def main(comm):
        a = Armci.init(comm)
        ptrs = a.malloc(1024)
        if a.my_id == 0:
            a.put(np.arange(128.0), ptrs[0])
        a.barrier()
        a.set_access_mode(ptrs[0], AccessMode.READ_ONLY)
        out = np.zeros(128)
        for _ in range(5):
            a.get(ptrs[0], out)
            np.testing.assert_array_equal(out, np.arange(128.0))
        a.barrier()
        a.set_access_mode(ptrs[0], AccessMode.DEFAULT)
        a.barrier()
        a.free(ptrs[a.my_id])

    spmd(4, main)


def test_read_only_rejects_put():
    def main(comm):
        a = Armci.init(comm)
        ptrs = a.malloc(64)
        a.set_access_mode(ptrs[0], AccessMode.READ_ONLY)
        with pytest.raises(ArgumentError):
            a.put(np.zeros(4), ptrs[0])
        a.barrier()
        a.set_access_mode(ptrs[0], AccessMode.DEFAULT)
        a.free(ptrs[a.my_id])

    spmd(2, main)


def test_acc_only_phase_concurrent_accumulates():
    """The NWChem hot path: concurrent accumulates under shared locks."""

    def main(comm):
        a = Armci.init(comm)
        ptrs = a.malloc(64)
        a.set_access_mode(ptrs[0], AccessMode.ACC_ONLY)
        for _ in range(10):
            a.acc(np.ones(8), ptrs[0])
        a.barrier()
        a.set_access_mode(ptrs[0], AccessMode.DEFAULT)
        if a.my_id == 0:
            v = np.zeros(8)
            a.get(ptrs[0], v)
            assert np.all(v == 10.0 * a.nproc)
        a.barrier()
        a.free(ptrs[a.my_id])

    spmd(4, main)


def test_acc_only_rejects_get():
    def main(comm):
        a = Armci.init(comm)
        ptrs = a.malloc(64)
        a.set_access_mode(ptrs[0], AccessMode.ACC_ONLY)
        with pytest.raises(ArgumentError):
            a.get(ptrs[0], np.zeros(4))
        a.barrier()
        a.set_access_mode(ptrs[0], AccessMode.DEFAULT)
        a.free(ptrs[a.my_id])

    spmd(2, main)


def test_mode_is_per_gmr():
    def main(comm):
        a = Armci.init(comm)
        p1 = a.malloc(32)
        p2 = a.malloc(32)
        a.set_access_mode(p1[0], AccessMode.READ_ONLY)
        # p2 unaffected
        a.put(np.zeros(4), p2[a.my_id])
        a.barrier()
        a.set_access_mode(p1[0], AccessMode.DEFAULT)
        a.free(p2[a.my_id])
        a.free(p1[a.my_id])

    spmd(2, main)


def test_mode_change_is_collective_barrier():
    """No operation under the old mode may race one under the new mode."""

    def main(comm):
        a = Armci.init(comm)
        ptrs = a.malloc(32)
        # writes happen strictly before the READ_ONLY phase
        a.put(np.full(4, float(a.my_id)), ptrs[a.my_id])
        a.set_access_mode(ptrs[0], AccessMode.READ_ONLY)
        v = np.zeros(4)
        a.get(ptrs[0], v)
        assert np.all(v == 0.0)
        a.set_access_mode(ptrs[0], AccessMode.DEFAULT)
        a.free(ptrs[a.my_id])

    spmd(3, main)
