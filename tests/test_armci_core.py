"""Tests for the ARMCI-MPI core: allocation, contiguous ops, consistency."""

from __future__ import annotations

import numpy as np
import pytest

from repro import mpi
from repro.armci import Armci, ArmciConfig, GlobalPtr
from repro.mpi.errors import ArgumentError

from conftest import spmd


def test_malloc_returns_base_pointer_vector():
    def main(comm):
        a = Armci.init(comm)
        ptrs = a.malloc(128)
        assert len(ptrs) == a.nproc
        for r, p in enumerate(ptrs):
            assert p.rank == r
            assert not p.is_null
        a.barrier()
        a.free(ptrs[a.my_id])

    spmd(4, main)


def test_zero_size_slice_gets_null_pointer():
    def main(comm):
        a = Armci.init(comm)
        n = 64 if a.my_id != 1 else 0
        ptrs = a.malloc(n)
        assert ptrs[1].is_null
        assert not ptrs[0].is_null
        # communication with the NULL slice is erroneous
        if a.my_id == 0:
            with pytest.raises(ArgumentError):
                a.put(np.zeros(4), ptrs[1])
        a.barrier()
        a.free(None if a.my_id == 1 else ptrs[a.my_id])

    spmd(3, main)


def test_free_leader_election_with_null_members():
    """§V-B: members with NULL slices still participate in free."""

    def main(comm):
        a = Armci.init(comm)
        # only the last rank gets memory -> it becomes the free leader
        n = 32 if a.my_id == a.nproc - 1 else 0
        ptrs = a.malloc(n)
        a.barrier()
        a.free(ptrs[a.my_id] if n else None)
        assert len(a.table) == 0

    spmd(4, main)


def test_free_all_null_raises():
    def main(comm):
        a = Armci.init(comm)
        ptrs = a.malloc(16)  # a real allocation to keep the table nonempty
        with pytest.raises(ArgumentError):
            a.free(None)
        a.barrier()
        a.free(ptrs[a.my_id])

    spmd(2, main)


def test_put_get_roundtrip_all_pairs():
    def main(comm):
        a = Armci.init(comm)
        ptrs = a.malloc(8 * a.nproc)
        me = a.my_id
        # everyone writes its id into slot `me` of every process
        for t in range(a.nproc):
            a.put(np.array([float(me)]), ptrs[t] + 8 * me)
        a.barrier()
        mine = np.zeros(a.nproc)
        a.get(ptrs[me], mine)
        assert mine.tolist() == [float(r) for r in range(a.nproc)]
        a.barrier()
        a.free(ptrs[me])

    spmd(4, main)


def test_pointer_arithmetic():
    p = GlobalPtr(3, 0x1000)
    assert (p + 16).addr == 0x1010
    assert (p + 16 - 16) == p
    assert p.rank == 3


def test_get_into_preexisting_data_overwrites_exactly():
    def main(comm):
        a = Armci.init(comm)
        ptrs = a.malloc(32)
        if a.my_id == 0:
            a.put(np.arange(4.0), ptrs[0])
        a.barrier()
        if a.my_id == 1:
            buf = np.full(6, -1.0)
            a.get(ptrs[0], buf[1:5], nbytes=32)
            assert buf.tolist() == [-1.0, 0.0, 1.0, 2.0, 3.0, -1.0]
        a.barrier()
        a.free(ptrs[a.my_id])

    spmd(2, main)


def test_accumulate_is_atomic_under_contention():
    """All ranks accumulate into one slot concurrently; sum must be exact.

    This passes only because accumulate uses MPI_SUM atomically — the
    reason GA can implement its hot accumulate path on MPI RMA at all.
    """

    def main(comm):
        a = Armci.init(comm)
        ptrs = a.malloc(8)
        reps = 20
        for _ in range(reps):
            a.acc(np.ones(1), ptrs[0])
        a.barrier()
        if a.my_id == 0:
            v = np.zeros(1)
            a.get(ptrs[0], v)
            assert v[0] == reps * a.nproc
        a.barrier()
        a.free(ptrs[a.my_id])

    spmd(4, main)


def test_acc_scale_matches_armci_acc_dbl():
    def main(comm):
        a = Armci.init(comm)
        ptrs = a.malloc(32)
        if a.my_id == 0:
            a.put(np.array([1.0, 2.0, 3.0, 4.0]), ptrs[1])
        a.barrier()
        if a.my_id == 0:
            a.acc(np.array([10.0, 10.0, 10.0, 10.0]), ptrs[1], scale=0.5)
        a.barrier()
        if a.my_id == 1:
            v = np.zeros(4)
            a.get(ptrs[1], v)
            assert v.tolist() == [6.0, 7.0, 8.0, 9.0]
        a.barrier()
        a.free(ptrs[a.my_id])

    spmd(2, main)


def test_acc_does_not_mutate_source_buffer():
    def main(comm):
        a = Armci.init(comm)
        ptrs = a.malloc(8)
        src = np.array([2.0])
        a.acc(src, ptrs[0], scale=3.0)
        assert src[0] == 2.0
        a.barrier()
        a.free(ptrs[a.my_id])

    spmd(2, main)


def test_int_accumulate():
    def main(comm):
        a = Armci.init(comm)
        ptrs = a.malloc(16)
        a.acc(np.array([1, 2], dtype="i4"), ptrs[0])
        a.barrier()
        if a.my_id == 0:
            v = np.zeros(2, dtype="i4")
            a.get(ptrs[0], v)
            assert v.tolist() == [a.nproc, 2 * a.nproc]
        a.barrier()
        a.free(ptrs[a.my_id])

    spmd(3, main)


def test_location_consistency_own_ops_ordered():
    """§IV-A: a process observes its own ops to one target in issue order."""

    def main(comm):
        a = Armci.init(comm)
        ptrs = a.malloc(8)
        if a.my_id == 1:
            for v in range(10):
                a.put(np.array([float(v)]), ptrs[0])
                out = np.zeros(1)
                a.get(ptrs[0], out)
                assert out[0] == float(v), "own writes must be ordered"
        a.barrier()
        a.free(ptrs[a.my_id])

    spmd(2, main)


def test_fence_is_noop_and_remote_completion_on_return():
    """§V-F: ops complete remotely before returning, so Fence has no work."""

    def main(comm):
        a = Armci.init(comm)
        ptrs = a.malloc(8)
        if a.my_id == 0:
            a.put(np.array([4.25]), ptrs[1])
            a.fence(1)  # no-op
            comm.send("done", dest=1)
        else:
            comm.recv(source=0)
            # the put had already completed remotely WITHOUT any fence,
            # because each op closes its own exclusive epoch
            v = np.zeros(1)
            a.get(ptrs[1], v)
            assert v[0] == 4.25
        a.barrier()
        a.free(ptrs[a.my_id])
        assert a.stats.fences >= 1 or a.my_id != 0

    spmd(2, main)


def test_fence_invalid_target_raises():
    def main(comm):
        a = Armci.init(comm)
        with pytest.raises(ArgumentError):
            a.fence(99)

    spmd(2, main)


def test_nonblocking_ops():
    def main(comm):
        a = Armci.init(comm)
        ptrs = a.malloc(8)
        h1 = a.nb_put(np.array([1.5]), ptrs[0])
        a.wait(h1)
        a.barrier()
        out = np.zeros(1)
        h2 = a.nb_get(ptrs[0], out)
        a.wait_all([h2])
        assert out[0] == 1.5
        a.barrier()  # nobody may accumulate before all gets completed
        h3 = a.nb_acc(np.array([0.5]), ptrs[0])
        assert h3.test() or True
        a.wait(h3)
        a.barrier()
        a.free(ptrs[a.my_id])

    spmd(2, main)


def test_multiple_allocations_translation():
    """The GMR table must route each pointer to the right window."""

    def main(comm):
        a = Armci.init(comm)
        p1 = a.malloc(16)
        p2 = a.malloc(16)
        a.put(np.array([1.0, 1.0]), p1[0])
        a.put(np.array([2.0, 2.0]), p2[0])
        a.barrier()
        if a.my_id == 0:
            v1, v2 = np.zeros(2), np.zeros(2)
            a.get(p1[0], v1)
            a.get(p2[0], v2)
            assert np.all(v1 == 1.0) and np.all(v2 == 2.0)
        a.barrier()
        a.free(p2[a.my_id])
        a.free(p1[a.my_id])
        assert len(a.table) == 0

    spmd(2, main)


def test_dangling_pointer_after_free_raises():
    def main(comm):
        a = Armci.init(comm)
        ptrs = a.malloc(16)
        keep = ptrs[0]
        a.barrier()
        a.free(ptrs[a.my_id])
        with pytest.raises(ArgumentError):
            a.get(keep, np.zeros(2))

    spmd(2, main)


def test_out_of_allocation_pointer_raises():
    def main(comm):
        a = Armci.init(comm)
        ptrs = a.malloc(16)
        with pytest.raises(ArgumentError):
            a.put(np.zeros(4), ptrs[0] + 16)  # starts at end: 32B overflows
        a.barrier()
        a.free(ptrs[a.my_id])

    spmd(2, main)


def test_put_larger_than_buffer_raises():
    def main(comm):
        a = Armci.init(comm)
        ptrs = a.malloc(8)
        with pytest.raises((ArgumentError, mpi.RMARangeError)):
            a.put(np.zeros(100), ptrs[0])
        a.barrier()
        a.free(ptrs[a.my_id])

    spmd(2, main)


def test_stats_counting():
    def main(comm):
        a = Armci.init(comm)
        ptrs = a.malloc(64)
        a.put(np.zeros(8), ptrs[a.my_id])
        a.get(ptrs[a.my_id], np.zeros(8))
        a.acc(np.zeros(8), ptrs[a.my_id])
        a.barrier()
        assert a.stats.puts == a.nproc
        assert a.stats.gets == a.nproc
        assert a.stats.accs == a.nproc
        assert a.stats.bytes_put == 64 * a.nproc
        a.free(ptrs[a.my_id])

    spmd(4, main)


def test_finalize_frees_everything():
    def main(comm):
        a = Armci.init(comm)
        _first = a.malloc(16)  # deliberately left for finalize to free
        _second = a.malloc(0 if a.my_id == 0 else 8)
        a.finalize()
        assert len(a.table) == 0

    spmd(3, main)


def test_coherent_shortcut_requires_nonstrict():
    def main(comm):
        with pytest.raises(ArgumentError):
            Armci.init(comm, ArmciConfig(coherent_shortcut=True), strict=True)

    spmd(1, main)
