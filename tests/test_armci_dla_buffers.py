"""Tests for direct local access (§V-E) and global-buffer staging (§V-E.1)."""

from __future__ import annotations

import numpy as np
import pytest

from repro import mpi
from repro.armci import Armci, ArmciConfig
from repro.mpi.errors import ArgumentError, RMASyncError
from repro.mpi.window import LOCK_EXCLUSIVE

from conftest import spmd


# ---------------------------------------------------------------------------
# DLA: access_begin / access_end
# ---------------------------------------------------------------------------


def test_access_begin_gives_writable_view():
    def main(comm):
        a = Armci.init(comm)
        ptrs = a.malloc(64)
        view = a.access_begin(ptrs[a.my_id], 64, "f8")
        view[:] = float(a.my_id)
        a.access_end(ptrs[a.my_id])
        a.barrier()
        nbr = (a.my_id + 1) % a.nproc
        v = np.zeros(8)
        a.get(ptrs[nbr], v)
        assert np.all(v == float(nbr))
        a.barrier()
        a.free(ptrs[a.my_id])

    spmd(3, main)


def test_access_begin_remote_pointer_raises():
    def main(comm):
        a = Armci.init(comm)
        ptrs = a.malloc(16)
        other = (a.my_id + 1) % a.nproc
        with pytest.raises(ArgumentError):
            a.access_begin(ptrs[other], 16)
        a.barrier()
        a.free(ptrs[a.my_id])

    spmd(2, main)


def test_nested_access_begin_raises():
    def main(comm):
        a = Armci.init(comm)
        ptrs = a.malloc(16)
        a.access_begin(ptrs[a.my_id], 16)
        with pytest.raises(RMASyncError):
            a.access_begin(ptrs[a.my_id], 8)
        a.access_end(ptrs[a.my_id])
        a.barrier()
        a.free(ptrs[a.my_id])

    spmd(1, main)


def test_access_end_without_begin_raises():
    def main(comm):
        a = Armci.init(comm)
        ptrs = a.malloc(16)
        with pytest.raises(RMASyncError):
            a.access_end(ptrs[a.my_id])
        a.barrier()
        a.free(ptrs[a.my_id])

    spmd(1, main)


def test_communication_during_dla_on_same_gmr_raises():
    """One lock per window per process: DLA + put through the same GMR
    from the same process is erroneous (§V-E)."""

    def main(comm):
        a = Armci.init(comm)
        ptrs = a.malloc(32)
        a.access_begin(ptrs[a.my_id], 32)
        with pytest.raises(RMASyncError):
            a.put(np.zeros(2), ptrs[(a.my_id + 1) % a.nproc])
        a.access_end(ptrs[a.my_id])
        a.barrier()
        a.free(ptrs[a.my_id])

    spmd(2, main)


def test_dla_excludes_remote_access():
    """While rank 0 holds DLA, a remote put to it must wait, not corrupt."""

    def main(comm):
        a = Armci.init(comm)
        ptrs = a.malloc(8)
        if a.my_id == 0:
            view = a.access_begin(ptrs[0], 8, "f8")
            view[0] = 1.0
            comm.barrier()  # rank 1 issues a put now; it must block
            assert view[0] == 1.0  # our exclusive lock holds writers off
            a.access_end(ptrs[0])
            # after release the put lands
            got = np.zeros(1)
            while got[0] != 2.0:
                a.get(ptrs[0], got)
        else:
            comm.barrier()
            a.put(np.array([2.0]), ptrs[0])  # blocks until access_end
        a.barrier()
        a.free(ptrs[a.my_id])

    spmd(2, main)


def test_dla_mixed_dtype_views():
    def main(comm):
        a = Armci.init(comm)
        ptrs = a.malloc(16)
        view = a.access_begin(ptrs[a.my_id] + 8, 8, "i8")
        view[0] = 7
        a.access_end(ptrs[a.my_id] + 8)
        a.barrier()
        v = np.zeros(2, dtype="i8")
        a.get(ptrs[a.my_id], v)
        assert v.tolist() == [0, 7]
        a.free(ptrs[a.my_id])

    spmd(1, main)


# ---------------------------------------------------------------------------
# Global-buffer staging (§V-E.1)
# ---------------------------------------------------------------------------


def test_put_from_global_buffer_is_staged():
    """Local source inside a window: must stage, and must count a copy."""

    def main(comm):
        a = Armci.init(comm)
        ptrs = a.malloc(64)
        # initialise my slab via DLA
        view = a.access_begin(ptrs[a.my_id], 64, "f8")
        view[:] = np.arange(8.0) + 10 * a.my_id
        a.access_end(ptrs[a.my_id])
        a.barrier()
        if a.my_id == 0:
            # ARMCI-style: local buffer IS my global allocation
            a.put(ptrs[0], ptrs[1], nbytes=64)
            assert a.stats.staged_copies >= 1
        a.barrier()
        if a.my_id == 1:
            v = np.zeros(8)
            a.get(ptrs[1], v)
            np.testing.assert_array_equal(v, np.arange(8.0))
        a.barrier()
        a.free(ptrs[a.my_id])

    spmd(2, main)


def test_get_into_global_buffer_is_staged():
    def main(comm):
        a = Armci.init(comm)
        ptrs = a.malloc(64)
        if a.my_id == 1:
            view = a.access_begin(ptrs[1], 64, "f8")
            view[:] = 5.0
            a.access_end(ptrs[1])
        a.barrier()
        if a.my_id == 0:
            # destination is my own global slab
            a.get(ptrs[1], ptrs[0], nbytes=64)
            assert a.stats.staged_copies >= 1
            v = np.zeros(8)
            a.get(ptrs[0], v)
            assert np.all(v == 5.0)
        a.barrier()
        a.free(ptrs[a.my_id])

    spmd(2, main)


def test_numpy_view_aliasing_detected():
    """Even a raw numpy view of window memory (not a GlobalPtr) is staged."""

    def main(comm):
        a = Armci.init(comm)
        ptrs = a.malloc(64)
        before = a.stats.staged_copies
        if a.my_id == 0:
            slab = a.table.require(ptrs[0]).local_slab().view("f8")
            # write through DLA first so the bytes are defined
            v = a.access_begin(ptrs[0], 64, "f8")
            v[:] = 3.0
            a.access_end(ptrs[0])
            a.put(slab, ptrs[1])  # slab aliases the window -> staged
            assert a.stats.staged_copies > before
        a.barrier()
        if a.my_id == 1:
            out = np.zeros(8)
            a.get(ptrs[1], out)
            assert np.all(out == 3.0)
        a.barrier()
        a.free(ptrs[a.my_id])

    spmd(2, main)


def test_plain_buffer_not_staged():
    def main(comm):
        a = Armci.init(comm)
        ptrs = a.malloc(16)
        a.put(np.zeros(2), ptrs[a.my_id])
        assert a.stats.staged_copies == 0
        a.barrier()
        a.free(ptrs[a.my_id])

    spmd(2, main)


def test_naive_global_buffer_handling_deadlocks():
    """The §V-E.1 hazard made concrete: two processes that lock their own
    window region and then the partner's (instead of staging) deadlock.

    This is the exact circular-dependence scenario the staging protocol
    exists to avoid; ARMCI-MPI's `put` (previous tests) does not hang.
    """

    def main(comm):
        a = Armci.init(comm)
        ptrs = a.malloc(32)
        gmr = a.table.require(ptrs[a.my_id])
        me = gmr.group.rank
        partner = (me + 1) % a.nproc
        comm.barrier()
        # naive: hold the local lock while asking for the remote one
        gmr.win.lock(me, LOCK_EXCLUSIVE)
        comm.barrier()  # both now hold their self-lock... but MPI-2 says
        # one lock per window per process: the second lock below is the
        # same window, so this raises rather than deadlocks
        gmr.win.lock(partner, LOCK_EXCLUSIVE)

    with pytest.raises((RMASyncError, mpi.RankFailedError)):
        spmd(2, main, watchdog_s=0.3)


def test_two_window_circular_lock_deadlocks():
    """With two distinct windows the same naive pattern really deadlocks."""

    def main(comm):
        a = Armci.init(comm)
        p1 = a.malloc(32)
        p2 = a.malloc(32)
        g1 = a.table.require(p1[a.my_id])
        g2 = a.table.require(p2[a.my_id])
        comm.barrier()
        if a.my_id == 0:
            g1.win.lock(0, LOCK_EXCLUSIVE)
            comm.barrier()
            g2.win.lock(1, LOCK_EXCLUSIVE)  # never granted
        else:
            g2.win.lock(1, LOCK_EXCLUSIVE)
            comm.barrier()
            g1.win.lock(0, LOCK_EXCLUSIVE)  # never granted

    with pytest.raises(mpi.ProgressDeadlockError):
        spmd(2, main, watchdog_s=0.3)


def test_coherent_shortcut_skips_staging():
    def main(comm):
        a = Armci.init(
            comm, ArmciConfig(coherent_shortcut=True), strict=False
        )
        ptrs = a.malloc(64)
        if a.my_id == 0:
            a.put(ptrs[0], ptrs[1], nbytes=64)
            assert a.stats.staged_copies == 0
        a.barrier()
        a.free(ptrs[a.my_id])

    spmd(2, main)
