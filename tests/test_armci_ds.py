"""Tests for the data-server backend (§IX's two-sided ARMCI) and its
three-way differential agreement with the other stacks."""

from __future__ import annotations

import numpy as np
import pytest

from repro.armci import Armci
from repro.armci_ds import DataServerArmci
from repro.armci_native import NativeArmci
from repro.ga import GlobalArray, TaskPool, dgemm, fill, sum_all, zero
from repro.mpi.errors import ArgumentError
from repro.nwchem import CcsdDriver, CcsdProblem, ring_ccd_dense

from conftest import spmd


def test_ds_put_get_acc():
    def main(comm):
        ds = DataServerArmci.init(comm)
        ptrs = ds.malloc(64)
        right = (ds.my_id + 1) % ds.nproc
        ds.put(np.arange(8.0), ptrs[right])
        ds.barrier()
        v = np.zeros(8)
        ds.get(ptrs[ds.my_id], v)
        np.testing.assert_array_equal(v, np.arange(8.0))
        ds.barrier()
        ds.acc(np.ones(8), ptrs[0], scale=0.25)
        ds.barrier()
        if ds.my_id == 0:
            ds.get(ptrs[0], v)
            np.testing.assert_array_equal(v, np.arange(8.0) + 0.25 * ds.nproc)
        ds.barrier()
        ds.free(ptrs[ds.my_id])
        ds.shutdown()

    spmd(3, main)


def test_ds_strided_and_iov():
    def main(comm):
        ds = DataServerArmci.init(comm)
        ptrs = ds.malloc(512)
        if ds.my_id == 0:
            ds.put_s(np.arange(16.0), [32], ptrs[1] + 64, [64], [32, 4])
        ds.barrier()
        if ds.my_id == 1:
            v = np.zeros(64)
            ds.get(ptrs[1], v)
            arr = v.reshape(8, 8)
            np.testing.assert_array_equal(arr[1:5, :4], np.arange(16.0).reshape(4, 4))
            out = np.zeros(16)
            ds.getv(
                [ptrs[1] + 64 + 64 * k for k in range(4)],
                out, [32 * k for k in range(4)], 32,
            )
            np.testing.assert_array_equal(out, np.arange(16.0))
        ds.barrier()
        ds.free(ptrs[ds.my_id])
        ds.shutdown()

    spmd(2, main)


def test_ds_rmw_unique():
    def main(comm):
        ds = DataServerArmci.init(comm)
        ptrs = ds.malloc(8)
        got = [ds.rmw("fetch_and_add_long", ptrs[0], 1) for _ in range(6)]
        allv = comm.allgather(got)
        flat = sorted(x for sub in allv for x in sub)
        assert flat == list(range(6 * ds.nproc))
        ds.barrier()
        ds.free(ptrs[ds.my_id])
        ds.shutdown()

    spmd(4, main)


def test_ds_server_error_propagates_to_client():
    def main(comm):
        ds = DataServerArmci.init(comm)
        ptrs = ds.malloc(16)
        from repro.armci import GlobalPtr

        with pytest.raises(ArgumentError):
            ds.get(GlobalPtr(0, 0xDEAD0000), np.zeros(1))
        ds.barrier()
        ds.free(ptrs[ds.my_id])
        ds.shutdown()

    spmd(2, main)


def test_ds_bottleneck_is_observable():
    """All clients hammer rank 0's server: its service count dominates."""

    def main(comm):
        ds = DataServerArmci.init(comm)
        ptrs = ds.malloc(64)
        for _ in range(10):
            ds.acc(np.ones(1), ptrs[0])
        ds.barrier()
        served = ds.requests_served
        if ds.my_id == 0:
            assert served[0] >= 10 * ds.nproc
            assert served[0] > max(served[1:], default=0)
        ds.barrier()
        ds.free(ptrs[ds.my_id])
        ds.shutdown()

    spmd(4, main)


def test_ga_runs_on_ds_backend():
    def main(comm):
        ds = DataServerArmci.init(comm)
        a = GlobalArray.create(ds, (8, 8), name="A")
        b = GlobalArray.create(ds, (8, 8), name="B")
        c = GlobalArray.create(ds, (8, 8), name="C")
        fill(a, 1.0)
        fill(b, 0.5)
        dgemm(1.0, a, b, 0.0, c)
        assert sum_all(c) == pytest.approx(8 * 8 * 4.0)
        pool = TaskPool(ds, 10)
        mine = list(pool.tasks())
        counts = comm.allgather(len(mine))
        assert sum(counts) == 10
        pool.destroy()
        ds.barrier()
        ds.shutdown()

    spmd(4, main)


def test_three_way_differential_ccsd():
    """The CCSD proxy produces the same energy on ALL THREE stacks."""
    problem = CcsdProblem(no=2, nv=3, tile=3, iterations=4)
    energies = {}
    for flavor in ("mpi", "native", "ds"):
        out = {}

        def main(comm, flavor=flavor, out=out):
            rt = {
                "mpi": lambda: Armci.init(comm),
                "native": lambda: NativeArmci.init(comm),
                "ds": lambda: DataServerArmci.init(comm),
            }[flavor]()
            driver = CcsdDriver(rt, problem)
            out["e"], _ = driver.solve()
            driver.destroy()
            if flavor == "ds":
                rt.shutdown()

        spmd(3, main)
        energies[flavor] = out["e"]
    e_ref, _, _ = ring_ccd_dense(problem.no, problem.nv, problem.iterations)
    for flavor, e in energies.items():
        assert e == pytest.approx(e_ref, rel=1e-10), flavor


def test_ds_modeled_cost_includes_two_message_latency():
    from repro.mpi.runtime import Runtime, current_proc
    from repro.simtime import INFINIBAND

    rt = Runtime(2)

    def main(comm):
        ds = DataServerArmci.init(comm, path=INFINIBAND.native)
        ptrs = ds.malloc(1 << 16)
        ds.barrier()
        if ds.my_id == 0:
            clock = current_proc().clock
            t0 = clock.now
            ds.get(ptrs[1], np.zeros(1 << 13), nbytes=1 << 16)
            dt = clock.now - t0
            p = INFINIBAND.native
            # two-sided request/response: strictly more than the one-sided path
            assert dt > p.xfer_time("get", 1 << 16)
            assert dt >= 2 * p.latency
        ds.barrier()
        ds.free(ptrs[ds.my_id])
        ds.shutdown()

    rt.spmd(main)
