"""Unit tests for GMR internals: translation table, addresses, handles."""

from __future__ import annotations

import numpy as np
import pytest

from repro.armci import Armci, GlobalPtr, NULL_ADDR
from repro.armci.gmr import GmrTable
from repro.mpi.errors import ArgumentError

from conftest import spmd


# ---------------------------------------------------------------------------
# GlobalPtr value semantics
# ---------------------------------------------------------------------------


def test_global_ptr_is_value_type():
    a = GlobalPtr(1, 0x2000)
    b = GlobalPtr(1, 0x2000)
    assert a == b and hash(a) == hash(b)
    assert a + 8 != a
    assert (a + 8).addr == 0x2008
    assert a < GlobalPtr(2, 0)  # ordered by rank first


def test_null_pointer():
    assert GlobalPtr(0, NULL_ADDR).is_null
    assert not GlobalPtr(0, 0x1000).is_null


# ---------------------------------------------------------------------------
# virtual address allocation
# ---------------------------------------------------------------------------


def test_va_allocation_alignment_and_monotonicity():
    t = GmrTable()
    a = t.allocate_va(0, 100, alignment=64)
    b = t.allocate_va(0, 10, alignment=64)
    c = t.allocate_va(0, 10, alignment=64)
    assert a % 64 == 0 and b % 64 == 0 and c % 64 == 0
    assert a < b < c
    assert b >= a + 100


def test_va_zero_size_is_null():
    t = GmrTable()
    assert t.allocate_va(3, 0, alignment=64) == NULL_ADDR


def test_va_spaces_are_per_process():
    t = GmrTable()
    a0 = t.allocate_va(0, 64, alignment=64)
    a1 = t.allocate_va(1, 64, alignment=64)
    assert a0 == a1  # independent address spaces start at the same base


def test_lookup_on_empty_table():
    t = GmrTable()
    assert t.lookup(0, 0x1000) is None
    assert t.lookup(0, NULL_ADDR) is None


# ---------------------------------------------------------------------------
# translation through a live runtime
# ---------------------------------------------------------------------------


def test_translation_table_routes_between_allocations():
    def main(comm):
        a = Armci.init(comm)
        p1 = a.malloc(64)
        p2 = a.malloc(128)
        g1 = a.table.require(p1[0])
        g2 = a.table.require(p2[0])
        assert g1 is not g2
        # interior addresses resolve to the right GMR
        assert a.table.lookup(0, p1[0].addr + 63) is g1
        assert a.table.lookup(0, p2[0].addr + 127) is g2
        # one past the end is NOT inside
        assert a.table.lookup(0, p1[0].addr + 64) in (None, g2)
        a.barrier()
        a.free(p2[a.my_id])
        a.free(p1[a.my_id])

    spmd(2, main)


def test_displacement_translation():
    def main(comm):
        a = Armci.init(comm)
        ptrs = a.malloc(96)
        gmr = a.table.require(ptrs[1])
        win_rank, disp = gmr.displacement(ptrs[1] + 40)
        assert win_rank == gmr.group.group_rank_of(1)
        assert disp == 40
        with pytest.raises(ArgumentError):
            gmr.displacement(ptrs[1] + 1000)
        a.barrier()
        a.free(ptrs[a.my_id])

    spmd(2, main)


def test_base_ptrs_match_malloc_return():
    def main(comm):
        a = Armci.init(comm)
        ptrs = a.malloc(32)
        gmr = a.table.require(ptrs[a.my_id])
        assert gmr.base_ptrs() == ptrs
        a.barrier()
        a.free(ptrs[a.my_id])

    spmd(3, main)


def test_local_slab_is_window_memory():
    def main(comm):
        a = Armci.init(comm)
        ptrs = a.malloc(64)
        gmr = a.table.require(ptrs[a.my_id])
        slab = gmr.local_slab()
        assert slab.nbytes == 64
        assert np.shares_memory(slab, gmr.win.exposed_buffer(gmr.group.rank))
        a.barrier()
        a.free(ptrs[a.my_id])

    spmd(2, main)


def test_gmr_contains_respects_null_slices():
    def main(comm):
        a = Armci.init(comm)
        ptrs = a.malloc(0 if a.my_id == 0 else 32)
        gmr = a.table.require(ptrs[1])
        assert not gmr.contains(0, 0x1000)  # rank 0 has the NULL slice
        assert gmr.contains(1, ptrs[1].addr)
        with pytest.raises(ArgumentError):
            gmr.displacement(GlobalPtr(0, 0x1000))
        a.barrier()
        a.free(None if a.my_id == 0 else ptrs[a.my_id])

    spmd(2, main)


def test_many_allocations_lookup_is_correct():
    """Interleaved allocs/frees keep the per-rank bisect index consistent."""

    def main(comm):
        a = Armci.init(comm)
        batches = [a.malloc(16 * (i + 1)) for i in range(6)]
        # free the even ones
        for i in (0, 2, 4):
            a.free(batches[i][a.my_id])
        # odd ones still resolve exactly
        for i in (1, 3, 5):
            gmr = a.table.lookup_ptr(batches[i][0])
            assert gmr is not None
            assert gmr.sizes[gmr.group.group_rank_of(0)] == 16 * (i + 1)
        # even ones are gone
        for i in (0, 2, 4):
            assert a.table.lookup_ptr(batches[i][0]) is None
        a.barrier()
        for i in (1, 3, 5):
            a.free(batches[i][a.my_id])
        assert len(a.table) == 0

    spmd(2, main)


def test_find_local_buffer_ignores_foreign_arrays():
    def main(comm):
        a = Armci.init(comm)
        ptrs = a.malloc(64)
        plain = np.zeros(64, dtype=np.uint8)
        assert a.table.find_local_buffer(a.my_id, plain) is None
        slab = a.table.require(ptrs[a.my_id]).local_slab()
        assert a.table.find_local_buffer(a.my_id, slab[10:20]) is not None
        a.barrier()
        a.free(ptrs[a.my_id])

    spmd(2, main)
