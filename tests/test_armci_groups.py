"""Tests for ARMCI groups: translation, collective & noncollective creation."""

from __future__ import annotations

import numpy as np
import pytest

from repro.armci import Armci
from repro.mpi.errors import ArgumentError
from repro.mpi.group import UNDEFINED

from conftest import spmd


def test_world_group_identity_translation():
    def main(comm):
        a = Armci.init(comm)
        g = a.world_group
        assert g.size == a.nproc
        for r in range(g.size):
            assert g.absolute_id(r) == r
        assert g.members_absolute() == list(range(a.nproc))

    spmd(4, main)


def test_collective_subgroup_and_absolute_ids():
    def main(comm):
        a = Armci.init(comm)
        sub = a.world_group.create_subgroup([1, 3])
        if a.my_id in (1, 3):
            assert sub is not None
            assert sub.size == 2
            # group rank -> absolute id (§V-A translation)
            assert sub.absolute_id(0) == 1
            assert sub.absolute_id(1) == 3
            assert sub.group_rank_of(3) == 1
            assert sub.group_rank_of(0) == UNDEFINED
        else:
            assert sub is None

    spmd(4, main)


def test_split_groups():
    def main(comm):
        a = Armci.init(comm)
        sub = a.world_group.split(color=a.my_id % 2)
        assert sub.size == 2
        expect = [r for r in range(4) if r % 2 == a.my_id % 2]
        assert sub.members_absolute() == expect

    spmd(4, main)


def test_malloc_on_subgroup_targets_absolute_ids():
    """ARMCI ops use absolute ids even on group allocations (§IV)."""

    def main(comm):
        a = Armci.init(comm)
        sub = a.world_group.create_subgroup([1, 2])
        if sub is not None:
            ptrs = a.malloc(32, group=sub)
            assert len(ptrs) == 2
            # pointer ranks are ABSOLUTE ids 1 and 2, not group ranks
            assert [p.rank for p in ptrs] == [1, 2]
            me_in_group = sub.rank
            peer = ptrs[1 - me_in_group]
            a.put(np.full(4, float(a.my_id)), peer)
            sub.barrier()
            mine = np.zeros(4)
            a.get(ptrs[me_in_group], mine)
            expect = 3.0 - a.my_id  # 1 <-> 2
            assert np.all(mine == expect)
            sub.barrier()
            a.free(ptrs[me_in_group], group=sub)
        a.barrier()

    spmd(4, main)


def test_group_allocation_invisible_to_outsiders():
    def main(comm):
        a = Armci.init(comm)
        sub = a.world_group.create_subgroup([0, 1])
        held = {}
        if sub is not None:
            ptrs = a.malloc(16, group=sub)
            held["p"] = ptrs
            sub.barrier()
        a.barrier()
        if sub is None:
            # rank 2/3 are outside the window's group: even a forged
            # pointer cannot open an epoch on it (MPI group rule)
            from repro.armci import GlobalPtr
            from repro.mpi.errors import WinError

            with pytest.raises((ArgumentError, WinError)):
                a.get(GlobalPtr(0, 0x1000), np.zeros(2))
        a.barrier()
        if sub is not None:
            a.free(held["p"][sub.rank], group=sub)

    spmd(4, main)


def test_noncollective_group_creation():
    """Only members participate — the EuroMPI'11 recursive algorithm."""

    def main(comm):
        a = Armci.init(comm)
        members = [0, 2, 3]
        if a.my_id in members:
            g = a.world_group.create_noncollective(members)
            assert g.size == 3
            assert g.members_absolute() == members
            assert g.absolute_id(g.rank) == a.my_id
            total = g.comm.allreduce(np.array([a.my_id]))
            assert total[0] == sum(members)
        else:
            pass  # rank 1 does nothing at all — that's the point
        a.barrier()

    spmd(4, main)


def test_noncollective_group_singleton():
    def main(comm):
        a = Armci.init(comm)
        g = a.world_group.create_noncollective([a.my_id], tag_seed=a.my_id + 1)
        assert g.size == 1
        assert g.members_absolute() == [a.my_id]
        a.barrier()

    spmd(3, main)


def test_noncollective_group_all_members():
    def main(comm):
        a = Armci.init(comm)
        g = a.world_group.create_noncollective(list(range(a.nproc)))
        assert g.size == a.nproc
        assert g.members_absolute() == list(range(a.nproc))
        g.barrier()

    spmd(4, main)


def test_noncollective_group_nonmember_raises():
    def main(comm):
        a = Armci.init(comm)
        if a.my_id == 0:
            with pytest.raises(ArgumentError):
                a.world_group.create_noncollective([1, 2])
        a.barrier()

    spmd(3, main)


def test_malloc_on_noncollective_group():
    def main(comm):
        a = Armci.init(comm)
        members = [1, 2]
        if a.my_id in members:
            g = a.world_group.create_noncollective(members)
            ptrs = a.malloc(16, group=g)
            a.put(np.array([float(a.my_id)]), ptrs[g.rank])
            g.barrier()
            v = np.zeros(1)
            a.get(ptrs[g.rank], v)
            assert v[0] == float(a.my_id)
            g.barrier()
            a.free(ptrs[g.rank], group=g)
        a.barrier()

    spmd(4, main)


def test_duplicate_members_raise():
    def main(comm):
        a = Armci.init(comm)
        if a.my_id == 0:
            with pytest.raises(ArgumentError):
                a.world_group.create_noncollective([0, 0])
        a.barrier()

    spmd(2, main)
