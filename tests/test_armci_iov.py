"""Tests for IOV operations: the four methods of §VI-A and auto checking."""

from __future__ import annotations

import numpy as np
import pytest

from repro.armci import Armci, ArmciConfig
from repro.mpi.errors import ArgumentError

from conftest import spmd


def _scatter_roundtrip(config):
    def main(comm):
        a = Armci.init(comm, config)
        ptrs = a.malloc(512)
        if a.my_id == 0:
            local = np.arange(64, dtype="f8").view(np.uint8).copy()
            # four 16-byte segments from local offsets 0,64,128,192
            a.putv(
                local,
                loc_offsets=[0, 64, 128, 192],
                dst=[ptrs[1] + off for off in (0, 128, 256, 384)],
                seg_bytes=16,
            )
        a.barrier()
        if a.my_id == 1:
            v = np.zeros(64)
            a.get(ptrs[1], v)
            # segment k carried doubles [8k, 8k+1]
            assert v[0:2].tolist() == [0.0, 1.0]
            assert v[16:18].tolist() == [8.0, 9.0]
            assert v[32:34].tolist() == [16.0, 17.0]
            assert v[48:50].tolist() == [24.0, 25.0]
            assert v[2:16].sum() == 0
            # gather them back
            out = np.zeros(8)
            a.getv(
                src=[ptrs[1] + off for off in (0, 128, 256, 384)],
                local=out,
                loc_offsets=[0, 16, 32, 48],
                seg_bytes=16,
            )
            assert out.tolist() == [0, 1, 8, 9, 16, 17, 24, 25]
        a.barrier()
        a.free(ptrs[a.my_id])

    spmd(2, main)


@pytest.mark.parametrize("method", ["auto", "conservative", "batched", "direct"])
def test_putv_getv_all_methods(method):
    _scatter_roundtrip(ArmciConfig(iov_method=method, iov_batch_size=2))


def test_accv():
    def main(comm):
        a = Armci.init(comm)
        ptrs = a.malloc(64)
        ones = np.ones(4).view(np.uint8).copy()
        a.accv(
            ones, loc_offsets=[0, 16],
            dst=[ptrs[0], ptrs[0] + 32], seg_bytes=16,
            scale=2.0,
        )
        a.barrier()
        if a.my_id == 0:
            v = np.zeros(8)
            a.get(ptrs[0], v)
            expect = np.zeros(8)
            expect[[0, 1, 4, 5]] = 2.0 * a.nproc
            np.testing.assert_array_equal(v, expect)
        a.barrier()
        a.free(ptrs[a.my_id])

    spmd(3, main)


def test_iov_methods_stats_recorded():
    def main(comm):
        a = Armci.init(comm, ArmciConfig(iov_method="batched", iov_batch_size=3))
        ptrs = a.malloc(256)
        a.putv(
            np.zeros(32, dtype=np.uint8), [0, 8, 16, 24],
            [ptrs[a.my_id] + o for o in (0, 32, 64, 96)], 8,
        )
        a.barrier()
        ops, segs, nbytes = a.stats.iov_ops["batched"]
        # stats are shared: every rank issued one 4-segment putv
        assert ops == a.nproc and segs == 4 * a.nproc and nbytes == 32 * a.nproc
        a.free(ptrs[a.my_id])

    spmd(2, main)


def test_auto_falls_back_on_overlap():
    """Overlapping destination segments must route to conservative."""

    def main(comm):
        a = Armci.init(comm, ArmciConfig(iov_method="auto"))
        ptrs = a.malloc(64)
        local = np.zeros(32, dtype=np.uint8)
        # segments 0..16 and 8..24 overlap at the destination
        a.putv(local, [0, 16], [ptrs[a.my_id], ptrs[a.my_id] + 8], 16)
        a.barrier()
        ops, _, _ = a.stats.iov_ops["conservative"]
        assert ops == a.nproc
        assert "direct" not in a.stats.iov_ops
        a.free(ptrs[a.my_id])

    spmd(2, main)


def test_auto_falls_back_on_multiple_gmrs():
    """Segments spanning two allocations must route to conservative."""

    def main(comm):
        a = Armci.init(comm, ArmciConfig(iov_method="auto"))
        p1 = a.malloc(32)
        p2 = a.malloc(32)
        local = np.zeros(32, dtype=np.uint8)
        a.putv(local, [0, 16], [p1[a.my_id], p2[a.my_id]], 16)
        a.barrier()
        assert "conservative" in a.stats.iov_ops
        assert "direct" not in a.stats.iov_ops
        a.free(p2[a.my_id])
        a.free(p1[a.my_id])

    spmd(2, main)


def test_auto_uses_direct_when_safe():
    def main(comm):
        a = Armci.init(comm, ArmciConfig(iov_method="auto"))
        ptrs = a.malloc(64)
        a.putv(
            np.zeros(32, dtype=np.uint8), [0, 16],
            [ptrs[a.my_id], ptrs[a.my_id] + 32], 16,
        )
        a.barrier()
        assert "direct" in a.stats.iov_ops
        a.free(ptrs[a.my_id])

    spmd(2, main)


def test_naive_checking_config():
    def main(comm):
        a = Armci.init(comm, ArmciConfig(iov_method="auto", iov_checking="naive"))
        ptrs = a.malloc(64)
        a.putv(
            np.zeros(32, dtype=np.uint8), [0, 16],
            [ptrs[a.my_id], ptrs[a.my_id] + 8], 16,
        )
        a.barrier()
        assert "conservative" in a.stats.iov_ops
        a.free(ptrs[a.my_id])

    spmd(1, main)


def test_direct_method_rejects_multi_gmr():
    def main(comm):
        a = Armci.init(comm, ArmciConfig(iov_method="direct"))
        p1 = a.malloc(32)
        p2 = a.malloc(32)
        with pytest.raises(ArgumentError):
            a.putv(
                np.zeros(32, dtype=np.uint8), [0, 16],
                [p1[a.my_id], p2[a.my_id]], 16,
            )
        a.barrier()
        a.free(p2[a.my_id])
        a.free(p1[a.my_id])

    spmd(1, main)


def test_iov_mixed_target_ranks_rejected():
    def main(comm):
        a = Armci.init(comm)
        ptrs = a.malloc(64)
        with pytest.raises(ArgumentError):
            a.putv(np.zeros(32, dtype=np.uint8), [0, 16], [ptrs[0], ptrs[1]], 16)
        a.barrier()
        a.free(ptrs[a.my_id])

    spmd(2, main)


def test_empty_iov_is_noop():
    def main(comm):
        a = Armci.init(comm)
        ptrs = a.malloc(64)
        a.putv(np.zeros(8, dtype=np.uint8), [], [], 16)
        a.getv((0, []), np.zeros(8, dtype=np.uint8), [], 16)
        a.barrier()
        a.free(ptrs[a.my_id])

    spmd(1, main)


def test_overlapping_get_destinations_fall_back():
    """For gets the *local* side is written; overlap there must degrade."""

    def main(comm):
        a = Armci.init(comm, ArmciConfig(iov_method="auto"))
        ptrs = a.malloc(64)
        out = np.zeros(32, dtype=np.uint8)
        a.getv(
            [ptrs[a.my_id], ptrs[a.my_id] + 32],
            out,
            loc_offsets=[0, 8],  # local overlap
            seg_bytes=16,
        )
        a.barrier()
        assert "conservative" in a.stats.iov_ops
        a.free(ptrs[a.my_id])

    spmd(1, main)


def test_batch_size_one_equals_conservative_epochs():
    """B=1 batched degenerates to one op per epoch (still single-GMR)."""

    def main(comm):
        a = Armci.init(comm, ArmciConfig(iov_method="batched", iov_batch_size=1))
        ptrs = a.malloc(128)
        a.putv(
            np.arange(32, dtype=np.uint8), [0, 8, 16, 24],
            [ptrs[a.my_id] + o for o in (0, 32, 64, 96)], 8,
        )
        a.barrier()
        v = np.zeros(128, dtype=np.uint8)
        a.get(ptrs[a.my_id], v)
        for k, off in enumerate((0, 32, 64, 96)):
            np.testing.assert_array_equal(v[off : off + 8], np.arange(8 * k, 8 * k + 8, dtype=np.uint8))
        a.free(ptrs[a.my_id])

    spmd(2, main)


def test_accv_misaligned_segment_raises():
    def main(comm):
        a = Armci.init(comm)
        ptrs = a.malloc(64)
        with pytest.raises(ArgumentError):
            a.accv(np.zeros(16, dtype=np.uint8), [0], [ptrs[a.my_id]], 12,
                   dtype="f8")
        a.barrier()
        a.free(ptrs[a.my_id])

    spmd(1, main)
