"""Tests for the ARMCI message layer (armci_msg_*) and mutex fairness."""

from __future__ import annotations

import numpy as np
import pytest

from repro.armci import Armci
from repro.armci.msg import (
    msg_barrier,
    msg_brdcst,
    msg_dgop,
    msg_igop,
    msg_llgop,
    msg_rcv,
    msg_snd,
)
from repro.mpi.errors import ArgumentError

from conftest import spmd


def test_msg_send_recv():
    def main(comm):
        a = Armci.init(comm)
        if a.my_id == 0:
            msg_snd(a, 42, np.arange(5, dtype="f8"), dest=1)
        elif a.my_id == 1:
            buf = np.zeros(5)
            n = msg_rcv(a, 42, buf, source=0)
            assert n == 40
            np.testing.assert_array_equal(buf, np.arange(5.0))

    spmd(2, main)


def test_msg_broadcast():
    def main(comm):
        a = Armci.init(comm)
        buf = np.zeros(4, dtype="i8")
        if a.my_id == 2:
            buf[:] = [9, 8, 7, 6]
        msg_brdcst(a, buf, root=2)
        assert buf.tolist() == [9, 8, 7, 6]

    spmd(3, main)


def test_msg_gops():
    def main(comm):
        a = Armci.init(comm)
        r = a.my_id
        total = msg_dgop(a, [float(r), 1.0], "+")
        assert total.tolist() == [sum(range(a.nproc)), float(a.nproc)]
        prod = msg_igop(a, [2], "*")
        assert prod[0] == 2**a.nproc
        hi = msg_llgop(a, [r * 10], "max")
        assert hi[0] == (a.nproc - 1) * 10
        lo = msg_dgop(a, [float(r)], "min")
        assert lo[0] == 0.0
        amax = msg_dgop(a, [-(r + 1.0)], "absmax")
        assert amax[0] == float(a.nproc)

    spmd(4, main)


def test_msg_gop_unknown_op():
    def main(comm):
        a = Armci.init(comm)
        with pytest.raises(ArgumentError):
            msg_dgop(a, [1.0], "xor")

    spmd(1, main)


def test_msg_barrier_is_plain_barrier():
    def main(comm):
        a = Armci.init(comm)
        before = a.stats.fences
        msg_barrier(a)
        assert a.stats.fences == before  # no fence, unlike ARMCI_Barrier

    spmd(2, main)


# ---------------------------------------------------------------------------
# mutex fairness (§V-D: "scanned starting at entry i+1, which ensures
# fairness")
# ---------------------------------------------------------------------------


def test_mutex_handoff_is_circularly_fair():
    """With rank 0 holding and ranks 1, 2 queued, release must reach rank 1
    first (scan starts at holder+1), then rank 2."""
    order: list[int] = []

    def main(comm):
        import numpy as _np

        from repro.mpi.window import LOCK_SHARED

        a = Armci.init(comm)
        mtx = a.create_mutexes(1)
        if a.my_id == 0:
            mtx.lock(0, 0)
            comm.barrier()
            # wait until BOTH waiters' bits are set in the byte vector
            # (deterministic: read B under a shared lock until B[1] & B[2])
            waiting = _np.zeros(3, dtype=_np.uint8)
            while not (waiting[1] and waiting[2]):
                mtx._win.lock(0, LOCK_SHARED)
                mtx._win.get(waiting, 0, 0)
                mtx._win.unlock(0)
            mtx.unlock(0, 0)  # forwards to rank 1 (scan from 0+1)
        elif a.my_id == 1:
            comm.barrier()
            mtx.lock(0, 0)  # blocks until handoff
            order.append(1)
            mtx.unlock(0, 0)  # forwards to rank 2 (scan from 1+1)
        else:
            comm.barrier()
            mtx.lock(0, 0)
            order.append(2)
            mtx.unlock(0, 0)
        a.barrier()
        mtx.destroy()

    spmd(3, main)
    assert order == [1, 2], f"handoff order violated fairness: {order}"
