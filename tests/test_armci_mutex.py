"""Tests for the §V-D queueing mutexes and mutex-based RMW."""

from __future__ import annotations

import numpy as np
import pytest

from repro.armci import (
    FETCH_AND_ADD,
    FETCH_AND_ADD_LONG,
    SWAP,
    SWAP_LONG,
    Armci,
)
from repro.mpi.errors import ArgumentError

from conftest import spmd


def test_mutex_mutual_exclusion_counter():
    """Unprotected read-modify-write would lose updates; the mutex must not."""

    def main(comm):
        a = Armci.init(comm)
        ptrs = a.malloc(8)
        mtx = a.create_mutexes(1)
        reps = 10
        for _ in range(reps):
            mtx.lock(0, 0)
            v = np.zeros(1)
            a.get(ptrs[0], v)
            a.put(v + 1.0, ptrs[0])
            mtx.unlock(0, 0)
        a.barrier()
        if a.my_id == 0:
            v = np.zeros(1)
            a.get(ptrs[0], v)
            assert v[0] == reps * a.nproc, "lost updates under the mutex!"
        a.barrier()
        mtx.destroy()
        a.free(ptrs[a.my_id])

    spmd(4, main)


def test_mutexes_on_every_host_and_index():
    def main(comm):
        a = Armci.init(comm)
        mtx = a.create_mutexes(3)
        # lock/unlock every (mutex, host) pair
        for host in range(a.nproc):
            for m in range(3):
                mtx.lock(m, host)
                mtx.unlock(m, host)
        a.barrier()
        mtx.destroy()

    spmd(3, main)


def test_mutex_blocks_until_released():
    def main(comm):
        a = Armci.init(comm)
        mtx = a.create_mutexes(1)
        order = a.world  # use comm for signalling
        if a.my_id == 0:
            mtx.lock(0, 0)
            comm.barrier()  # rank 1 now tries to lock and enqueues
            comm.send("release-soon", dest=1)
            mtx.unlock(0, 0)  # hands off to rank 1
        elif a.my_id == 1:
            comm.barrier()
            comm.recv(source=0)
            mtx.lock(0, 0)  # must succeed via handoff
            mtx.unlock(0, 0)
        else:
            comm.barrier()
        a.barrier()
        mtx.destroy()

    spmd(3, main)


def test_trylock():
    def main(comm):
        a = Armci.init(comm)
        mtx = a.create_mutexes(1)
        if a.my_id == 0:
            assert mtx.trylock(0, 0)  # uncontended
            comm.barrier()
            comm.barrier()
            mtx.unlock(0, 0)
        else:
            comm.barrier()
            assert not mtx.trylock(0, 0)  # held by rank 0
            comm.barrier()
        a.barrier()
        mtx.destroy()

    spmd(2, main)


def test_mutex_invalid_args():
    def main(comm):
        a = Armci.init(comm)
        mtx = a.create_mutexes(2)
        with pytest.raises(ArgumentError):
            mtx.lock(5, 0)
        with pytest.raises(ArgumentError):
            mtx.lock(0, 99)
        a.barrier()
        mtx.destroy()

    spmd(2, main)


# ---------------------------------------------------------------------------
# RMW (§V-D): two-epoch mutex-based implementation
# ---------------------------------------------------------------------------


def test_fetch_and_add_unique_values():
    """The classic NXTVAL test: concurrent fetch-and-adds must hand out
    every value exactly once."""

    def main(comm):
        a = Armci.init(comm)
        ptrs = a.malloc(8)
        got = [a.rmw(FETCH_AND_ADD_LONG, ptrs[0], 1) for _ in range(8)]
        allv = comm.allgather(got)
        flat = sorted(x for sub in allv for x in sub)
        assert flat == list(range(8 * a.nproc))
        a.barrier()
        a.free(ptrs[a.my_id])

    spmd(4, main)


def test_fetch_and_add_int32():
    def main(comm):
        a = Armci.init(comm)
        ptrs = a.malloc(8)
        old = a.rmw(FETCH_AND_ADD, ptrs[a.my_id], 7)
        assert old == 0
        old2 = a.rmw(FETCH_AND_ADD, ptrs[a.my_id], 1)
        assert old2 == 7
        a.barrier()
        a.free(ptrs[a.my_id])

    spmd(2, main)


def test_swap():
    def main(comm):
        a = Armci.init(comm)
        ptrs = a.malloc(8)
        if a.my_id == 0:
            assert a.rmw(SWAP_LONG, ptrs[0], 42) == 0
            assert a.rmw(SWAP_LONG, ptrs[0], 7) == 42
            assert a.rmw(SWAP, ptrs[0], 3) in (7, 3)  # i4 view of the i8 slot
        a.barrier()
        a.free(ptrs[a.my_id])

    spmd(2, main)


def test_rmw_misaligned_raises():
    def main(comm):
        a = Armci.init(comm)
        ptrs = a.malloc(16)
        with pytest.raises(ArgumentError):
            a.rmw(FETCH_AND_ADD_LONG, ptrs[a.my_id] + 3, 1)
        a.barrier()
        a.free(ptrs[a.my_id])

    spmd(1, main)


def test_rmw_unknown_op_raises():
    def main(comm):
        a = Armci.init(comm)
        ptrs = a.malloc(8)
        with pytest.raises(ArgumentError):
            a.rmw("compare_exchange", ptrs[0], 1)
        a.barrier()
        a.free(ptrs[a.my_id])

    spmd(1, main)


def test_rmw_mpi3_fast_path():
    """With MPI-3 windows, RMW uses fetch_and_op — no mutex traffic."""

    def main(comm):
        a = Armci.init(comm, strict=True, mpi3=True)
        ptrs = a.malloc(8)
        got = [a.rmw(FETCH_AND_ADD_LONG, ptrs[0], 1) for _ in range(10)]
        allv = comm.allgather(got)
        flat = sorted(x for sub in allv for x in sub)
        assert flat == list(range(10 * a.nproc))
        a.barrier()
        a.free(ptrs[a.my_id])

    spmd(3, main)


def test_rmw_different_gmrs_do_not_interfere():
    def main(comm):
        a = Armci.init(comm)
        p1 = a.malloc(8)
        p2 = a.malloc(8)
        a.rmw(FETCH_AND_ADD_LONG, p1[0], 1)
        a.rmw(FETCH_AND_ADD_LONG, p2[0], 10)
        a.barrier()
        if a.my_id == 0:
            v1 = np.zeros(1, dtype="i8")
            v2 = np.zeros(1, dtype="i8")
            a.get(p1[0], v1)
            a.get(p2[0], v2)
            assert v1[0] == a.nproc
            assert v2[0] == 10 * a.nproc
        a.barrier()
        a.free(p2[a.my_id])
        a.free(p1[a.my_id])

    spmd(3, main)
