"""Tests for the simulated native ARMCI, incl. differential vs ARMCI-MPI."""

from __future__ import annotations

import numpy as np
import pytest

from repro.armci import Armci
from repro.armci_native import NativeArmci
from repro.mpi.errors import ArgumentError, RMASyncError
from repro.simtime import INFINIBAND

from conftest import spmd


def test_native_put_get_acc():
    def main(comm):
        n = NativeArmci.init(comm)
        ptrs = n.malloc(64)
        n.put(np.arange(8.0), ptrs[(n.my_id + 1) % n.nproc])
        n.barrier()
        v = np.zeros(8)
        n.get(ptrs[n.my_id], v)
        np.testing.assert_array_equal(v, np.arange(8.0))
        n.barrier()  # no acc may land before every rank verified its slab
        n.acc(np.ones(8), ptrs[0], scale=3.0)
        n.barrier()
        if n.my_id == 0:
            n.get(ptrs[0], v)
            np.testing.assert_array_equal(v, np.arange(8.0) + 3.0 * n.nproc)
        n.barrier()
        n.free(ptrs[n.my_id])

    spmd(3, main)


def test_native_strided_and_iov():
    def main(comm):
        n = NativeArmci.init(comm)
        ptrs = n.malloc(512)
        if n.my_id == 0:
            n.put_s(np.arange(16.0), [32], ptrs[1] + 64, [64], [32, 4])
        n.barrier()
        if n.my_id == 1:
            v = np.zeros(64)
            n.get(ptrs[1], v)
            arr = v.reshape(8, 8)
            np.testing.assert_array_equal(arr[1:5, :4], np.arange(16.0).reshape(4, 4))
            out = np.zeros(16)
            n.getv(
                [ptrs[1] + 64 + 64 * k for k in range(4)],
                out, [32 * k for k in range(4)], 32,
            )
            np.testing.assert_array_equal(out, np.arange(16.0))
        n.barrier()
        n.free(ptrs[n.my_id])

    spmd(2, main)


def test_native_rmw_and_locks():
    def main(comm):
        n = NativeArmci.init(comm)
        ptrs = n.malloc(8)
        got = [n.rmw("fetch_and_add_long", ptrs[0], 1) for _ in range(5)]
        allv = comm.allgather(got)
        flat = sorted(x for sub in allv for x in sub)
        assert flat == list(range(5 * n.nproc))
        # host locks serialise
        for _ in range(5):
            n.lock(3, 0)
            n.unlock(3, 0)
        n.barrier()
        n.free(ptrs[n.my_id])

    spmd(4, main)


def test_native_lock_not_reentrant():
    def main(comm):
        n = NativeArmci.init(comm)
        n.lock(0, 0)
        with pytest.raises(RMASyncError):
            n.lock(0, 0)
        n.unlock(0, 0)

    spmd(1, main)


def test_native_unlock_by_nonholder_raises():
    def main(comm):
        n = NativeArmci.init(comm)
        if n.my_id == 0:
            n.lock(1, 0)
            comm.barrier()
            comm.barrier()
            n.unlock(1, 0)
        else:
            comm.barrier()
            with pytest.raises(RMASyncError):
                n.unlock(1, 0)
            comm.barrier()

    spmd(2, main)


def test_native_charges_modeled_time():
    def main(comm):
        n = NativeArmci.init(comm, path=INFINIBAND.native)
        ptrs = n.malloc(1 << 20)
        from repro.mpi.runtime import current_proc

        t0 = current_proc().clock.now
        n.put(np.zeros(1 << 17), ptrs[(n.my_id + 1) % n.nproc])  # 1 MiB
        dt = current_proc().clock.now - t0
        expect = INFINIBAND.native.xfer_time("put", 1 << 20)
        assert abs(dt - expect) < 1e-12
        n.barrier()
        n.free(ptrs[n.my_id])

    spmd(2, main)


def test_differential_native_vs_armci_mpi():
    """Identical random workloads through both runtimes -> identical memory."""

    def run(flavor, seed):
        out = {}

        def main(comm):
            rt = (
                Armci.init(comm)
                if flavor == "mpi"
                else NativeArmci.init(comm)
            )
            ptrs = rt.malloc(512)
            rng = np.random.default_rng(seed + rt.my_id)
            for _ in range(20):
                target = int(rng.integers(rt.nproc))
                off = int(rng.integers(0, 56)) * 8
                val = rng.random(1)
                rt.acc(val, ptrs[target] + off)
            rt.barrier()
            mine = np.zeros(64)
            rt.get(ptrs[rt.my_id], mine)
            gathered = comm.gather(mine.copy(), root=0)
            if rt.my_id == 0:
                out["mem"] = np.concatenate(gathered)
            rt.barrier()
            rt.free(ptrs[rt.my_id])

        spmd(3, main)
        return out["mem"]

    a = run("mpi", 7)
    b = run("native", 7)
    np.testing.assert_allclose(a, b, rtol=1e-12)


def test_differential_strided():
    def run(flavor):
        out = {}

        def main(comm):
            rt = Armci.init(comm) if flavor == "mpi" else NativeArmci.init(comm)
            ptrs = rt.malloc(1024)
            if rt.my_id == 0:
                src = np.arange(64.0)
                rt.put_s(src, [64], ptrs[1] + 16, [128], [64, 8])
            rt.barrier()
            if rt.my_id == 1:
                v = np.zeros(128)
                rt.get(ptrs[1], v)
                out["mem"] = v.copy()
            rt.barrier()
            rt.free(ptrs[rt.my_id])

        spmd(2, main)
        return out["mem"]

    np.testing.assert_array_equal(run("mpi"), run("native"))


def test_native_zero_size_and_free_protocol():
    def main(comm):
        n = NativeArmci.init(comm)
        ptrs = n.malloc(0 if n.my_id == 0 else 32)
        assert ptrs[0].is_null
        n.barrier()
        n.free(None if n.my_id == 0 else ptrs[n.my_id])
        assert not n.regions

    spmd(3, main)


def test_native_bad_address_raises():
    def main(comm):
        n = NativeArmci.init(comm)
        ptrs = n.malloc(32)
        from repro.armci import GlobalPtr

        with pytest.raises(ArgumentError):
            n.get(GlobalPtr(0, 0xDEAD0000), np.zeros(1))
        n.barrier()
        n.free(ptrs[n.my_id])

    spmd(2, main)
