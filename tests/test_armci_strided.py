"""Tests for strided operations: Algorithm 1, subarray translation, _s ops."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.armci import (
    Armci,
    ArmciConfig,
    StridedSpec,
    algorithm1_iter,
    segment_displacements,
    strided_datatype,
    strided_to_iov,
)
from repro.mpi.errors import ArgumentError

from conftest import spmd


# ---------------------------------------------------------------------------
# Algorithm 1 and its vectorised twin
# ---------------------------------------------------------------------------


def test_algorithm1_2d():
    # 3 segments, stride 100
    disps = list(algorithm1_iter([100], [8, 3]))
    assert disps == [0, 100, 200]


def test_algorithm1_3d_order():
    # idx[0] fastest (paper's odometer): strides (10, 100), counts (2, 3)
    disps = list(algorithm1_iter([10, 100], [4, 2, 3]))
    assert disps == [0, 10, 100, 110, 200, 210]


def test_algorithm1_zero_count():
    assert list(algorithm1_iter([10], [4, 0])) == []


def test_algorithm1_no_stride_levels():
    assert list(algorithm1_iter([], [16])) == [0]


@settings(max_examples=80, deadline=None)
@given(
    sl=st.integers(0, 3),
    data=st.data(),
)
def test_vectorised_matches_algorithm1(sl, data):
    strides = [data.draw(st.integers(1, 50)) for _ in range(sl)]
    count = [data.draw(st.integers(1, 8))] + [
        data.draw(st.integers(0, 4)) for _ in range(sl)
    ]
    ref = list(algorithm1_iter(strides, count))
    vec = segment_displacements(strides, count).tolist()
    assert vec == ref


# ---------------------------------------------------------------------------
# StridedSpec validation
# ---------------------------------------------------------------------------


def test_spec_counts_and_totals():
    spec = StridedSpec.make([8, 4, 3], [16, 128], [32, 256])
    assert spec.stride_levels == 2
    assert spec.seg_bytes == 8
    assert spec.num_segments == 12
    assert spec.total_bytes == 96


def test_spec_wrong_stride_length_raises():
    with pytest.raises(ArgumentError):
        StridedSpec.make([8, 4], [16, 32], [16])


def test_spec_overlapping_contiguous_raises():
    with pytest.raises(ArgumentError):
        StridedSpec.make([32, 4], [16], [16])  # 32B rows, 16B apart


def test_strided_to_iov():
    spec = StridedSpec.make([8, 3], [32], [64])
    src, dst, n = strided_to_iov(spec)
    assert src.tolist() == [0, 32, 64]
    assert dst.tolist() == [0, 64, 128]
    assert n == 8


# ---------------------------------------------------------------------------
# strided -> datatype translation (§VI-C backwards translation)
# ---------------------------------------------------------------------------


def test_strided_datatype_is_subarray_for_nested_strides():
    t = strided_datatype([64, 640], [16, 4, 5])
    # 5 planes x 4 rows of 16 bytes: 20 segments
    sm = t.segment_map()
    assert sm.total_bytes == 16 * 4 * 5
    assert "subarray" in t.name


def test_strided_datatype_falls_back_to_hindexed():
    # stride 48 not divisible by 20 -> cannot nest evenly
    t = strided_datatype([20, 48], [8, 2, 2])
    assert "hindexed" in t.name
    assert t.segment_map().total_bytes == 8 * 4


@settings(max_examples=80, deadline=None)
@given(sl=st.integers(0, 3), data=st.data())
def test_strided_datatype_matches_algorithm1_segments(sl, data):
    """Whatever representation is chosen, the byte layout must equal the
    reference Algorithm 1 enumeration."""
    seg = data.draw(st.integers(1, 6))
    strides, count = [], [seg]
    prev = seg
    for _ in range(sl):
        stride = data.draw(st.integers(prev, prev * 3))
        strides.append(stride)
        count.append(data.draw(st.integers(1, 3)))
        prev = stride * count[-1] if stride * count[-1] > 0 else prev
    t = strided_datatype(strides, count)
    sm = t.segment_map()
    expect = sorted(
        (d, seg) for d in algorithm1_iter(strides, count)
    )
    got = sorted(zip(sm.offsets.tolist(), sm.lengths.tolist()))
    # coalescing may merge adjacent segments; compare covered byte sets
    def cover(pairs):
        s = set()
        for off, ln in pairs:
            s.update(range(off, off + ln))
        return s

    assert cover(got) == cover(expect)
    assert sm.total_bytes == seg * max(
        1, int(np.prod(count[1:])) if len(count) > 1 else 1
    )


# ---------------------------------------------------------------------------
# put_s / get_s / acc_s end-to-end (both methods)
# ---------------------------------------------------------------------------


def _2d_roundtrip(config):
    """Put a 4x6-double patch into a remote 8x8 'array', read it back."""

    def main(comm):
        a = Armci.init(comm, config)
        ptrs = a.malloc(8 * 8 * 8)  # an 8x8 array of doubles per rank
        if a.my_id == 0:
            src = np.arange(4 * 6, dtype="f8")  # contiguous 4x6 patch
            # remote layout: rows of 8 doubles (64B); patch rows of 6 (48B)
            a.put_s(
                src,
                src_strides=[48],
                dst=ptrs[1] + (8 + 1) * 8,  # start at [1][1]
                dst_strides=[64],
                count=[48, 4],
            )
        a.barrier()
        if a.my_id == 1:
            view = a.access_begin(ptrs[1], 8 * 8 * 8, "f8")
            arr = view.reshape(8, 8)
            np.testing.assert_array_equal(
                arr[1:5, 1:7], np.arange(24.0).reshape(4, 6)
            )
            assert arr[0].sum() == 0 and arr[5:].sum() == 0
            a.access_end(ptrs[1])
            # strided get back into a padded local buffer
            out = np.zeros((6, 8))
            a.get_s(
                src=ptrs[1] + (8 + 1) * 8,
                src_strides=[64],
                dst=out,
                dst_strides=[8 * 8],
                count=[48, 4],
            )
            np.testing.assert_array_equal(out[:4, :6], np.arange(24.0).reshape(4, 6))
            assert out[:, 6:].sum() == 0
        a.barrier()
        a.free(ptrs[a.my_id])

    spmd(2, main)


def test_put_s_get_s_direct():
    _2d_roundtrip(ArmciConfig(strided_method="direct"))


def test_put_s_get_s_iov_auto():
    _2d_roundtrip(ArmciConfig(strided_method="iov", iov_method="auto"))


def test_put_s_get_s_iov_conservative():
    _2d_roundtrip(ArmciConfig(strided_method="iov", iov_method="conservative"))


def test_put_s_get_s_iov_batched():
    _2d_roundtrip(ArmciConfig(strided_method="iov", iov_method="batched", iov_batch_size=2))


def test_acc_s_with_scale():
    def main(comm):
        a = Armci.init(comm)
        ptrs = a.malloc(16 * 8)
        # everyone accumulates 0.5 * ones into rows 0 and 2 of a 4x4 array
        src = np.ones(8)
        a.acc_s(
            src, src_strides=[32], dst=ptrs[0], dst_strides=[64],
            count=[32, 2], scale=0.5,
        )
        a.barrier()
        if a.my_id == 0:
            v = np.zeros(16)
            a.get(ptrs[0], v)
            expect = np.zeros((4, 4))
            expect[0] = expect[2] = 0.5 * a.nproc
            np.testing.assert_array_equal(v.reshape(4, 4), expect)
        a.barrier()
        a.free(ptrs[a.my_id])

    spmd(3, main)


def test_3d_strided_put_matches_numpy():
    def main(comm):
        a = Armci.init(comm)
        # remote: 4x4x4 doubles
        ptrs = a.malloc(4 * 4 * 4 * 8)
        if a.my_id == 0:
            # put a 2x2x2 patch at origin (1,1,1)
            src = np.arange(8.0)
            a.put_s(
                src,
                src_strides=[16, 32],  # 2 doubles contiguous, 2x2 segments
                dst=ptrs[1] + ((1 * 16) + (1 * 4) + 1) * 8,
                dst_strides=[4 * 8, 16 * 8],
                count=[16, 2, 2],
            )
        a.barrier()
        if a.my_id == 1:
            v = np.zeros(64)
            a.get(ptrs[1], v)
            arr = v.reshape(4, 4, 4)
            np.testing.assert_array_equal(
                arr[1:3, 1:3, 1:3], np.arange(8.0).reshape(2, 2, 2)
            )
            assert arr.sum() == np.arange(8.0).sum()
        a.barrier()
        a.free(ptrs[a.my_id])

    spmd(2, main)


def test_strided_methods_agree():
    """direct and iov strided paths must move identical bytes."""

    def run(config, seed):
        results = {}

        def main(comm):
            a = Armci.init(comm, config)
            ptrs = a.malloc(1024)
            rng = np.random.default_rng(seed)
            if a.my_id == 0:
                src = rng.random(32)
                a.put_s(src, [64], ptrs[1] + 128, [128], [64, 4])
            a.barrier()
            if a.my_id == 1:
                v = np.zeros(128)
                a.get(ptrs[1], v)
                results["data"] = v.copy()
            a.barrier()
            a.free(ptrs[a.my_id])

        spmd(2, main)
        return results["data"]

    direct = run(ArmciConfig(strided_method="direct"), 42)
    via_iov = run(ArmciConfig(strided_method="iov", iov_method="direct"), 42)
    batched = run(ArmciConfig(strided_method="iov", iov_method="batched"), 42)
    np.testing.assert_array_equal(direct, via_iov)
    np.testing.assert_array_equal(direct, batched)


def test_strided_local_buffer_too_small_raises():
    def main(comm):
        a = Armci.init(comm)
        ptrs = a.malloc(256)
        with pytest.raises(ArgumentError):
            a.put_s(np.zeros(4), [64], ptrs[0], [64], [32, 4])
        a.barrier()
        a.free(ptrs[a.my_id])

    spmd(2, main)


def test_zero_segment_strided_is_noop():
    def main(comm):
        a = Armci.init(comm)
        ptrs = a.malloc(64)
        a.put_s(np.zeros(8), [16], ptrs[0], [16], [8, 0])
        a.barrier()
        if a.my_id == 0:
            v = np.zeros(8)
            a.get(ptrs[0], v)
            assert v.sum() == 0
        a.barrier()
        a.free(ptrs[a.my_id])

    spmd(2, main)
