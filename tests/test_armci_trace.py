"""Tests for the ARMCI tracing facility (ARMCI_PROFILE equivalent)."""

from __future__ import annotations

import numpy as np

from repro.armci import Armci, TracingArmci
from repro.ga import GlobalArray, zero
from repro.mpi.runtime import Runtime
from repro.simtime import INFINIBAND, MPITimingPolicy

from conftest import spmd


def test_trace_records_ops_and_targets():
    def main(comm):
        rt = TracingArmci(Armci.init(comm))
        ptrs = rt.malloc(64)
        other = (rt.my_id + 1) % rt.nproc
        rt.put(np.ones(4), ptrs[other])
        rt.get(ptrs[other], np.zeros(4))
        rt.acc(np.ones(2), ptrs[other])
        rt.barrier()
        mine = [e for e in rt.events if e.rank == rt.my_id]
        assert [e.op for e in mine] == ["put", "get", "acc"]
        assert all(e.target == other for e in mine)
        assert mine[0].nbytes == 32 and mine[2].nbytes == 16
        rt.free(ptrs[rt.my_id])

    spmd(2, main)


def test_trace_durations_use_modeled_time():
    rt = Runtime(2)
    rt.timing = MPITimingPolicy(INFINIBAND.mpi)

    def main(comm):
        tr = TracingArmci(Armci.init(comm))
        ptrs = tr.malloc(1 << 20)
        tr.barrier()
        if tr.my_id == 0:
            tr.put(np.zeros(1 << 17), ptrs[1])  # 1 MiB
            ev = [e for e in tr.events if e.op == "put"][0]
            # duration = lock + wire + unlock on the IB MPI path
            path = INFINIBAND.mpi
            expect = (
                path.sync_time("lock")
                + path.xfer_time("put", 1 << 20)
                + path.sync_time("unlock")
            )
            assert abs(ev.duration - expect) < 1e-12
        tr.barrier()
        tr.free(ptrs[tr.my_id])

    rt.spmd(main)


def test_trace_summary_and_matrix():
    def main(comm):
        tr = TracingArmci(Armci.init(comm))
        ptrs = tr.malloc(64)
        if tr.my_id == 0:
            for _ in range(3):
                tr.put(np.ones(4), ptrs[1])
            tr.rmw("fetch_and_add_long", ptrs[1], 1)
        tr.barrier()
        if tr.my_id == 0:
            summary = tr.summary_by_op()
            assert summary["put"][0] == 3
            assert summary["put"][1] == 96
            assert summary["rmw"][0] == 1
            assert tr.traffic_matrix()[(0, 1)] >= 96
            report = tr.render(max_events=5)
            assert "put" in report and "0 -> 1" in report
        tr.barrier()
        tr.free(ptrs[tr.my_id])

    spmd(2, main)


def test_trace_clear():
    def main(comm):
        tr = TracingArmci(Armci.init(comm))
        ptrs = tr.malloc(16)
        tr.put(np.ones(2), ptrs[tr.my_id])
        assert tr.events
        tr.barrier()
        tr.clear()
        assert not tr.events
        tr.free(ptrs[tr.my_id])

    spmd(2, main)


def test_traced_runtime_works_under_ga():
    """The tracer is transparent: GA runs on it unchanged."""

    def main(comm):
        tr = TracingArmci(Armci.init(comm))
        ga = GlobalArray.create(tr, (6, 6), "f8")
        zero(ga)
        if tr.my_id == 0:
            ga.put((1, 1), (5, 5), np.ones((4, 4)))
        ga.sync()
        got = ga.get((0, 0), (6, 6))
        assert got.sum() == 16.0
        # each rank owns its own tracer: events are per-process views
        ops = {e.op for e in tr.events}
        assert "get_s" in ops
        if tr.my_id == 0:
            assert "put_s" in ops
        ga.destroy()

    spmd(4, main)
