"""Proc-backend tests: thread/proc parity, fault surfacing, fork safety.

The proc backend (:mod:`repro.mpi.backend_proc`) must be a drop-in for
the thread backend at the ARMCI/GA level: the same seeded program must
produce byte-identical global-array contents on both.  Failure handling
crosses a real process boundary here — a SIGKILLed child must surface
as :class:`~repro.mpi.runtime.RankFailedError` on the survivors and the
parent, mirroring what ``mark_dead`` does between threads.
"""

from __future__ import annotations

import os
import signal

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.armci import Armci, ArmciConfig
from repro.ga import GlobalArray, zero
from repro.mpi import runtime as rt_mod
from repro.mpi.errors import ArgumentError, CommError, InternalError
from repro.mpi.group import Group
from repro.mpi.runtime import RankFailedError, Runtime
from repro.mpi.window import LOCK_EXCLUSIVE, Win

NPROC = 4


@pytest.fixture(autouse=True)
def _no_ambient_layers(request):
    """Proc runs reject ambient sanitizer/fault hooks (thread-only layers)."""
    if request.config.getoption("--sanitize") or request.config.getoption("--faults"):
        pytest.skip("proc backend does not support ambient sanitizer/faults")


def proc_spmd(nproc, fn, *args):
    """Like conftest.spmd but on real processes (generous join timeout)."""
    return Runtime(nproc, backend="proc").spmd(fn, *args, join_timeout=120.0)


# ---------------------------------------------------------------------------
# basics
# ---------------------------------------------------------------------------


def _ring_body(comm):
    rank = comm.rank
    vals = comm.allgather(rank * 10)
    comm.send(("ping", rank), (rank + 1) % comm.size, tag=3)
    payload, _st = comm.recv(source=(rank - 1) % comm.size, tag=3)
    local = np.full(4, rank, dtype=np.int64)
    win = Win.create(comm, local, disp_unit=8)
    right = (rank + 1) % comm.size
    win.lock(right, LOCK_EXCLUSIVE)
    win.put(np.full(4, 100 + rank, dtype=np.int64), right, target_count=4)
    win.unlock(right)
    comm.barrier()
    win.lock(rank, LOCK_EXCLUSIVE)
    mine = win.local_view(np.int64).copy()
    win.unlock(rank)
    win.free()
    return vals, payload, mine.tolist()


def test_proc_backend_basics():
    out = proc_spmd(NPROC, _ring_body)
    for rank, (vals, payload, mine) in enumerate(out):
        assert vals == [r * 10 for r in range(NPROC)]
        assert payload == ("ping", (rank - 1) % NPROC)
        assert mine == [100 + (rank - 1) % NPROC] * 4


def test_proc_backend_subgroup_windows_do_not_collide():
    """Disjoint subgroups create windows concurrently; identity must not
    collide even though per-runtime ``win_id`` counters diverge."""

    def body(comm):
        rank = comm.rank
        sub = comm.split(color=rank % 2, key=rank)
        half = np.full(2, 10 * rank, dtype=np.int64)
        # group 0 creates an extra window first, desynchronising any
        # naive creation-order-based identity
        if rank % 2 == 0:
            extra = Win.create(sub, np.zeros(2, dtype=np.int64), disp_unit=8)
        win = Win.create(sub, half, disp_unit=8)
        peer = (sub.rank + 1) % sub.size
        win.lock(peer, LOCK_EXCLUSIVE)
        win.put(np.full(2, 7 + rank, dtype=np.int64), peer, target_count=2)
        win.unlock(peer)
        sub.barrier()
        win.lock(sub.rank, LOCK_EXCLUSIVE)
        mine = win.local_view(np.int64).copy()
        win.unlock(sub.rank)
        win.free()
        if rank % 2 == 0:
            extra.free()
        return mine.tolist()

    out = proc_spmd(NPROC, body)
    for rank, mine in enumerate(out):
        peer_world = (rank + 2) % NPROC
        assert mine == [7 + peer_world] * 2


# ---------------------------------------------------------------------------
# thread/proc parity (property)
# ---------------------------------------------------------------------------


def _patch_ops(shape):
    """Scripted GA patch ops: (issuer, kind, lo, hi, seed, alpha)."""

    def build(issuer, kind, y0, x0, dy, dx, seed, alpha):
        lo = (y0, x0)
        hi = (min(shape[0], y0 + dy), min(shape[1], x0 + dx))
        return issuer, kind, lo, hi, seed, alpha

    return st.builds(
        build,
        st.integers(0, NPROC - 1),
        st.sampled_from(["put", "acc"]),
        st.integers(0, shape[0] - 1),
        st.integers(0, shape[1] - 1),
        st.integers(1, shape[0]),
        st.integers(1, shape[1]),
        st.integers(0, 2**16),
        st.integers(1, 3),
    )


def _parity_program(comm, datapath, ops, shape, rmw_rounds):
    """The seeded workload both backends must agree on, byte for byte."""
    armci = Armci.init(comm, mpi3=(datapath == "mpi3"), datapath=datapath)
    ga = GlobalArray.create(armci, shape, "i8")
    zero(ga)
    for issuer, kind, lo, hi, seed, alpha in ops:
        if armci.my_id == issuer:
            rng = np.random.default_rng(seed)
            patch = tuple(h - l for l, h in zip(lo, hi))
            data = rng.integers(0, 1000, size=patch, dtype=np.int64)
            if kind == "put":
                ga.put(lo, hi, data)
            else:
                ga.acc(lo, hi, data, alpha=alpha)
        ga.sync()  # serialise scripted ops so both backends see one order
    # rmw storm on a shared counter: per-rank fetch order is timing
    # dependent, but the final value is not
    counters = armci.malloc(8)
    if armci.my_id == 0:
        view = armci.access_begin(counters[0], 8, dtype=np.int64)
        view[:] = 0
        armci.access_end(counters[0])
    armci.barrier()
    for i in range(rmw_rounds):
        armci.rmw("fetch_and_add", counters[0], armci.my_id + i + 1)
    armci.barrier()
    final = int(armci.rmw("fetch_and_add", counters[0], 0))
    full = ga.get((0, 0), shape)
    ga.sync()
    ga.destroy()
    armci.free(counters[armci.my_id])
    armci.finalize()
    return full.tobytes(), final


@settings(max_examples=4, deadline=None)
@given(
    datapath=st.sampled_from(["mpi2", "mpi3"]),
    ops=st.lists(_patch_ops((10, 10)), min_size=1, max_size=6),
    rmw_rounds=st.integers(1, 4),
)
def test_thread_proc_parity(datapath, ops, rmw_rounds):
    shape = (10, 10)
    thread_out = Runtime(NPROC, watchdog_s=2.0).spmd(
        _parity_program, datapath, ops, shape, rmw_rounds
    )
    proc_out = proc_spmd(NPROC, _parity_program, datapath, ops, shape, rmw_rounds)
    expected_rmw = sum(
        r + i + 1 for r in range(NPROC) for i in range(rmw_rounds)
    )
    # all ranks agree within each backend …
    assert len({b for b, _f in thread_out}) == 1
    assert len({b for b, _f in proc_out}) == 1
    # … and the backends agree with each other, byte for byte
    assert thread_out[0][0] == proc_out[0][0]
    assert thread_out[0][1] == proc_out[0][1] == expected_rmw


# ---------------------------------------------------------------------------
# failure surfacing
# ---------------------------------------------------------------------------


def test_proc_child_sigkill_raises_rankfailed():
    """A killed child surfaces as RankFailedError, like mark_dead."""

    def body(comm):
        comm.barrier()
        if comm.rank == 2:
            os.kill(os.getpid(), signal.SIGKILL)
        for _ in range(500):
            comm.barrier()
        return comm.rank

    rt = Runtime(NPROC, backend="proc")
    with pytest.raises(RankFailedError, match="rank 2"):
        rt.spmd(body, join_timeout=60.0)


def test_proc_child_exception_propagates_original_type():
    def body(comm):
        comm.barrier()
        if comm.rank == 1:
            raise ValueError("boom on rank 1")
        for _ in range(500):
            comm.barrier()
        return comm.rank

    rt = Runtime(NPROC, backend="proc")
    with pytest.raises(ValueError, match="boom on rank 1"):
        rt.spmd(body, join_timeout=60.0)


# ---------------------------------------------------------------------------
# unsupported surfaces + config validation
# ---------------------------------------------------------------------------


def test_proc_rejects_thread_only_layers():
    rt = Runtime(2, backend="proc")
    rt.sanitizer = object()
    with pytest.raises(InternalError, match="thread-backend only"):
        rt.spmd(lambda comm: None)


def test_proc_comm_ft_surface_raises_typed():
    def body(comm):
        with pytest.raises(CommError, match="thread-backend only"):
            comm.revoke()
        with pytest.raises(CommError, match="thread-backend only"):
            comm.agree()
        with pytest.raises(CommError, match="thread-backend only"):
            comm.shrink()
        return True

    assert proc_spmd(2, body) == [True, True]


def test_armci_config_backend_mismatch_rejected():
    def body(comm):
        with pytest.raises(ArgumentError, match="backend"):
            Armci.init(comm, config=ArmciConfig(backend="proc"))
        armci = Armci.init(comm, config=ArmciConfig(backend="thread"))
        armci.finalize()
        return True

    out = Runtime(2).spmd(body)
    assert out == [True, True]


def test_armci_config_backend_validation():
    with pytest.raises(ValueError, match="backend"):
        ArmciConfig(backend="threads")


# ---------------------------------------------------------------------------
# fork/spawn safety of runtime globals
# ---------------------------------------------------------------------------


def test_creation_hooks_not_duplicated_into_children():
    """RUNTIME_CREATION_HOOKS fire on the parent runtime only: child-side
    runtime replicas are built with apply_hooks=False, so an ambient
    layer is never silently installed in a process it cannot observe."""
    calls: list[int] = []

    def hook(runtime):
        calls.append(runtime.nproc)

    def body(comm):
        # forked children inherit a snapshot of `calls`; if the child's
        # runtime replica had applied hooks it would have grown here
        return len(calls)

    rt_mod.RUNTIME_CREATION_HOOKS.append(hook)
    try:
        rt = Runtime(2, backend="proc")
        assert calls == [2]  # parent runtime ran the hook exactly once
        out = rt.spmd(body, join_timeout=60.0)
        assert out == [1, 1]
        assert calls == [2]
    finally:
        rt_mod.RUNTIME_CREATION_HOOKS.remove(hook)


def test_thread_backend_unchanged_by_default():
    rt = Runtime(2)
    assert rt.backend.name == "thread"
    out = rt.spmd(lambda comm: comm.allgather(comm.rank))
    assert out == [[0, 1], [0, 1]]
