"""Proc-backend tests: thread/proc parity, fault surfacing, fork safety.

The proc backend (:mod:`repro.mpi.backend_proc`) must be a drop-in for
the thread backend at the ARMCI/GA level: the same seeded program must
produce byte-identical global-array contents on both.  Failure handling
crosses a real process boundary here — a SIGKILLed child must surface
as :class:`~repro.mpi.runtime.RankFailedError` on the survivors and the
parent, mirroring what ``mark_dead`` does between threads.
"""

from __future__ import annotations

import os
import pathlib
import signal
import time

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.armci import Armci, ArmciConfig
from repro.ga import GlobalArray, zero
from repro.mpi import runtime as rt_mod
from repro.mpi.errors import ArgumentError, CommError, InternalError
from repro.mpi.group import Group
from repro.mpi.runtime import RankFailedError, Runtime
from repro.mpi.window import LOCK_EXCLUSIVE, Win

NPROC = 4


@pytest.fixture(autouse=True)
def _no_ambient_layers(request):
    """Proc runs reject ambient sanitizer/fault hooks (thread-only layers)."""
    if request.config.getoption("--sanitize") or request.config.getoption("--faults"):
        pytest.skip("proc backend does not support ambient sanitizer/faults")


def proc_spmd(nproc, fn, *args):
    """Like conftest.spmd but on real processes (generous join timeout)."""
    return Runtime(nproc, backend="proc").spmd(fn, *args, join_timeout=120.0)


# ---------------------------------------------------------------------------
# basics
# ---------------------------------------------------------------------------


def _ring_body(comm):
    rank = comm.rank
    vals = comm.allgather(rank * 10)
    comm.send(("ping", rank), (rank + 1) % comm.size, tag=3)
    payload, _st = comm.recv(source=(rank - 1) % comm.size, tag=3)
    local = np.full(4, rank, dtype=np.int64)
    win = Win.create(comm, local, disp_unit=8)
    right = (rank + 1) % comm.size
    win.lock(right, LOCK_EXCLUSIVE)
    win.put(np.full(4, 100 + rank, dtype=np.int64), right, target_count=4)
    win.unlock(right)
    comm.barrier()
    win.lock(rank, LOCK_EXCLUSIVE)
    mine = win.local_view(np.int64).copy()
    win.unlock(rank)
    win.free()
    return vals, payload, mine.tolist()


def test_proc_backend_basics():
    out = proc_spmd(NPROC, _ring_body)
    for rank, (vals, payload, mine) in enumerate(out):
        assert vals == [r * 10 for r in range(NPROC)]
        assert payload == ("ping", (rank - 1) % NPROC)
        assert mine == [100 + (rank - 1) % NPROC] * 4


def test_proc_backend_subgroup_windows_do_not_collide():
    """Disjoint subgroups create windows concurrently; identity must not
    collide even though per-runtime ``win_id`` counters diverge."""

    def body(comm):
        rank = comm.rank
        sub = comm.split(color=rank % 2, key=rank)
        half = np.full(2, 10 * rank, dtype=np.int64)
        # group 0 creates an extra window first, desynchronising any
        # naive creation-order-based identity
        if rank % 2 == 0:
            extra = Win.create(sub, np.zeros(2, dtype=np.int64), disp_unit=8)
        win = Win.create(sub, half, disp_unit=8)
        peer = (sub.rank + 1) % sub.size
        win.lock(peer, LOCK_EXCLUSIVE)
        win.put(np.full(2, 7 + rank, dtype=np.int64), peer, target_count=2)
        win.unlock(peer)
        sub.barrier()
        win.lock(sub.rank, LOCK_EXCLUSIVE)
        mine = win.local_view(np.int64).copy()
        win.unlock(sub.rank)
        win.free()
        if rank % 2 == 0:
            extra.free()
        return mine.tolist()

    out = proc_spmd(NPROC, body)
    for rank, mine in enumerate(out):
        peer_world = (rank + 2) % NPROC
        assert mine == [7 + peer_world] * 2


# ---------------------------------------------------------------------------
# thread/proc parity (property)
# ---------------------------------------------------------------------------


def _patch_ops(shape):
    """Scripted GA patch ops: (issuer, kind, lo, hi, seed, alpha)."""

    def build(issuer, kind, y0, x0, dy, dx, seed, alpha):
        lo = (y0, x0)
        hi = (min(shape[0], y0 + dy), min(shape[1], x0 + dx))
        return issuer, kind, lo, hi, seed, alpha

    return st.builds(
        build,
        st.integers(0, NPROC - 1),
        st.sampled_from(["put", "acc"]),
        st.integers(0, shape[0] - 1),
        st.integers(0, shape[1] - 1),
        st.integers(1, shape[0]),
        st.integers(1, shape[1]),
        st.integers(0, 2**16),
        st.integers(1, 3),
    )


def _parity_program(comm, datapath, ops, shape, rmw_rounds):
    """The seeded workload both backends must agree on, byte for byte."""
    armci = Armci.init(comm, mpi3=(datapath == "mpi3"), datapath=datapath)
    ga = GlobalArray.create(armci, shape, "i8")
    zero(ga)
    for issuer, kind, lo, hi, seed, alpha in ops:
        if armci.my_id == issuer:
            rng = np.random.default_rng(seed)
            patch = tuple(h - l for l, h in zip(lo, hi))
            data = rng.integers(0, 1000, size=patch, dtype=np.int64)
            if kind == "put":
                ga.put(lo, hi, data)
            else:
                ga.acc(lo, hi, data, alpha=alpha)
        ga.sync()  # serialise scripted ops so both backends see one order
    # rmw storm on a shared counter: per-rank fetch order is timing
    # dependent, but the final value is not
    counters = armci.malloc(8)
    if armci.my_id == 0:
        view = armci.access_begin(counters[0], 8, dtype=np.int64)
        view[:] = 0
        armci.access_end(counters[0])
    armci.barrier()
    for i in range(rmw_rounds):
        armci.rmw("fetch_and_add", counters[0], armci.my_id + i + 1)
    armci.barrier()
    final = int(armci.rmw("fetch_and_add", counters[0], 0))
    full = ga.get((0, 0), shape)
    ga.sync()
    ga.destroy()
    armci.free(counters[armci.my_id])
    armci.finalize()
    return full.tobytes(), final


@settings(max_examples=4, deadline=None)
@given(
    datapath=st.sampled_from(["mpi2", "mpi3"]),
    ops=st.lists(_patch_ops((10, 10)), min_size=1, max_size=6),
    rmw_rounds=st.integers(1, 4),
)
def test_thread_proc_parity(datapath, ops, rmw_rounds):
    shape = (10, 10)
    thread_out = Runtime(NPROC, watchdog_s=2.0).spmd(
        _parity_program, datapath, ops, shape, rmw_rounds
    )
    proc_out = proc_spmd(NPROC, _parity_program, datapath, ops, shape, rmw_rounds)
    expected_rmw = sum(
        r + i + 1 for r in range(NPROC) for i in range(rmw_rounds)
    )
    # all ranks agree within each backend …
    assert len({b for b, _f in thread_out}) == 1
    assert len({b for b, _f in proc_out}) == 1
    # … and the backends agree with each other, byte for byte
    assert thread_out[0][0] == proc_out[0][0]
    assert thread_out[0][1] == proc_out[0][1] == expected_rmw


# ---------------------------------------------------------------------------
# failure surfacing
# ---------------------------------------------------------------------------


def test_proc_child_sigkill_raises_rankfailed():
    """A killed child surfaces as RankFailedError, like mark_dead."""

    def body(comm):
        comm.barrier()
        if comm.rank == 2:
            os.kill(os.getpid(), signal.SIGKILL)
        for _ in range(500):
            comm.barrier()
        return comm.rank

    rt = Runtime(NPROC, backend="proc")
    with pytest.raises(RankFailedError, match="rank 2"):
        rt.spmd(body, join_timeout=60.0)


def test_proc_child_exception_propagates_original_type():
    def body(comm):
        comm.barrier()
        if comm.rank == 1:
            raise ValueError("boom on rank 1")
        for _ in range(500):
            comm.barrier()
        return comm.rank

    rt = Runtime(NPROC, backend="proc")
    with pytest.raises(ValueError, match="boom on rank 1"):
        rt.spmd(body, join_timeout=60.0)


# ---------------------------------------------------------------------------
# unsupported surfaces + config validation
# ---------------------------------------------------------------------------


def test_proc_rejects_thread_only_layers():
    rt = Runtime(2, backend="proc")
    rt.sanitizer = object()
    with pytest.raises(InternalError, match="thread-backend only"):
        rt.spmd(lambda comm: None)


def test_proc_comm_intercomm_raises_typed():
    def body(comm):
        with pytest.raises(CommError, match="thread-backend only"):
            comm.create_intercomm(0, comm, 0, tag=9)
        return True

    assert proc_spmd(2, body) == [True, True]


def test_armci_config_backend_mismatch_rejected():
    def body(comm):
        with pytest.raises(ArgumentError, match="backend"):
            Armci.init(comm, config=ArmciConfig(backend="proc"))
        armci = Armci.init(comm, config=ArmciConfig(backend="thread"))
        armci.finalize()
        return True

    out = Runtime(2).spmd(body)
    assert out == [True, True]


def test_armci_config_backend_validation():
    with pytest.raises(ValueError, match="backend"):
        ArmciConfig(backend="threads")


# ---------------------------------------------------------------------------
# fork/spawn safety of runtime globals
# ---------------------------------------------------------------------------


def test_creation_hooks_not_duplicated_into_children():
    """RUNTIME_CREATION_HOOKS fire on the parent runtime only: child-side
    runtime replicas are built with apply_hooks=False, so an ambient
    layer is never silently installed in a process it cannot observe."""
    calls: list[int] = []

    def hook(runtime):
        calls.append(runtime.nproc)

    def body(comm):
        # forked children inherit a snapshot of `calls`; if the child's
        # runtime replica had applied hooks it would have grown here
        return len(calls)

    rt_mod.RUNTIME_CREATION_HOOKS.append(hook)
    try:
        rt = Runtime(2, backend="proc")
        assert calls == [2]  # parent runtime ran the hook exactly once
        out = rt.spmd(body, join_timeout=60.0)
        assert out == [1, 1]
        assert calls == [2]
    finally:
        rt_mod.RUNTIME_CREATION_HOOKS.remove(hook)


def test_thread_backend_unchanged_by_default():
    rt = Runtime(2)
    assert rt.backend.name == "thread"
    out = rt.spmd(lambda comm: comm.allgather(comm.rank))
    assert out == [[0, 1], [0, 1]]


# ---------------------------------------------------------------------------
# ULFM surface on the proc backend
# ---------------------------------------------------------------------------


def _ulfm_surface_body(comm):
    # consensus + shrink without any failure: the FT surface must be a
    # plain collective when nobody is dead
    assert comm.agree(1) == 1
    assert comm.agree(comm.rank != 1) == 0  # AND semantics: one dissent wins
    sub = comm.shrink()  # no deaths: same membership, fresh context
    assert sub.size == comm.size
    assert sub.allgather(sub.rank) == list(range(comm.size))
    return comm.rank


def test_proc_ulfm_surface_works():
    assert proc_spmd(NPROC, _ulfm_surface_body) == list(range(NPROC))


def test_proc_revoke_poisons_peer_collectives():
    from repro.mpi.errors import CommRevokedError

    def body(comm):
        comm.barrier()
        if comm.rank == 0:
            comm.revoke()
            exc_type = "CommRevokedError"
        else:
            try:
                # peers re-enter collectives until the revoke lands; the
                # op count bounds the test if propagation were broken
                for _ in range(10_000):
                    comm.allgather(comm.rank)
                exc_type = "none"
            except CommRevokedError:
                exc_type = "CommRevokedError"
        return exc_type

    assert proc_spmd(NPROC, body) == ["CommRevokedError"] * NPROC


# ---------------------------------------------------------------------------
# cross-process recovery: the SIGKILL matrix
# ---------------------------------------------------------------------------

_GA_SHAPE = (8, 8)


def _ga_base():
    return np.add.outer(
        np.arange(_GA_SHAPE[0], dtype=np.int64) * 10,
        np.arange(_GA_SHAPE[1], dtype=np.int64),
    )


def _seed_ga(armci):
    from repro.ga import GlobalArray

    ga = GlobalArray.create(armci, _GA_SHAPE, "i8")
    blk = ga.distribution()
    if blk.size:
        view = ga.access()
        view[...] = _ga_base()[tuple(slice(l, h) for l, h in zip(blk.lo, blk.hi))]
        ga.release()
    ga.sync()
    return ga


def _risky_phase(comm, armci, ga, kind, victim):
    """The phase the victim dies inside; survivors keep issuing ``kind``."""
    me = comm.rank
    if kind == "mutex":
        mutexes = armci.create_mutexes(1)
        armci.barrier()
        if me == victim:
            mutexes.lock(0, 0)  # die holding it: reclamation must not hang
            os.kill(os.getpid(), signal.SIGKILL)
        from repro.armci.mutexes import MutexHolderFailed

        for _ in range(200):
            try:
                mutexes.lock(0, 0)
            except MutexHolderFailed:
                pass
            mutexes.unlock(0, 0)
        armci.barrier()
        return
    if kind == "collective":
        if me == victim:
            os.kill(os.getpid(), signal.SIGKILL)
        # survivors block in the collective until the heartbeat detector
        # declares the victim dead and poisons the wait
        for _ in range(200):
            comm.allgather(me)
        return
    # put / get / acc traffic against every rank in turn
    data = np.ones((2, 2), dtype=np.int64)
    if me == victim:
        ga.acc([0, 0], [2, 2], data)
        os.kill(os.getpid(), signal.SIGKILL)
    for i in range(2000):
        lo = [(2 * (me + i)) % 6, 0]
        hi = [lo[0] + 2, 2]
        if kind == "put":
            ga.put(lo, hi, data)
        elif kind == "get":
            ga.get(lo, hi)
        else:
            ga.acc(lo, hi, data)
    armci.barrier()


def _kill_matrix_body(comm, kind, victim):
    from repro.armci import Armci
    from repro.armci.mutexes import MutexHolderFailed
    from repro.ga import GlobalArray
    from repro.mpi.errors import (
        CommRevokedError,
        OpTimeoutError,
        TargetFailedError,
    )
    from repro.recover import recover

    recoverable = (
        TargetFailedError,
        RankFailedError,
        CommRevokedError,
        OpTimeoutError,
        MutexHolderFailed,
    )
    armci = Armci.init(comm)
    ga = _seed_ga(armci)
    ckpt = None
    try:
        # the kill can land while a survivor is still inside the
        # checkpoint's closing barrier (the victim's last broadcast dies
        # in its queue feeder thread), so the checkpoint is fallible too
        ckpt = ga.checkpoint()
        _risky_phase(comm, armci, ga, kind, victim)
        flag = 1
    except recoverable:
        armci.world.revoke()
        flag = 0
    if not armci.world.agree(flag):
        armci, report = recover(armci)
        assert victim in report.failed
        have_ckpt = ckpt is not None and np.array_equal(ckpt.data, _ga_base())
        if armci.world.agree(1 if have_ckpt else 0):
            ga = GlobalArray.restore(armci, ckpt)
        else:
            # died before every survivor held a consistent snapshot:
            # rebuild from the (deterministic) seed values instead
            ga = _seed_ga(armci)
    full = ga.get([0, 0], list(_GA_SHAPE))
    ga.sync()
    # the risky phase's partial writes are discarded by the restore, so
    # the checkpointed contents must be back, redistributed on the
    # shrunken grid
    assert np.array_equal(full, _ga_base()), full
    return ("done", armci.nproc)


# each op kind is covered, and each rank is a victim somewhere — rank 0
# matters most (it coordinates FT consensus, so its death exercises the
# coordinator-handoff path)
@pytest.mark.parametrize(
    "kind,victim",
    [
        ("put", 1),
        ("get", 2),
        ("acc", 3),
        ("mutex", 0),
        ("mutex", 2),
        ("collective", 0),
        ("collective", 1),
        ("collective", 3),
    ],
)
def test_proc_sigkill_matrix_survivors_recover(kind, victim):
    out = proc_spmd(NPROC, _kill_matrix_body, kind, victim)
    assert out[victim] is None  # the dead rank's slot in a recovered run
    for rank, res in enumerate(out):
        if rank != victim:
            assert res == ("done", NPROC - 1), (rank, res)


def test_proc_recovered_run_returns_none_for_dead_ranks():
    """The spmd survivor-results contract, in isolation."""

    def body(comm):
        comm.barrier()
        if comm.rank == 3:
            os.kill(os.getpid(), signal.SIGKILL)
        try:
            for _ in range(200):
                comm.barrier()
        except RankFailedError:
            comm.failure_ack()
        return comm.rank

    out = proc_spmd(NPROC, body)
    assert out == [0, 1, 2, None]


# ---------------------------------------------------------------------------
# thread/proc recovery parity
# ---------------------------------------------------------------------------


def _recovery_parity_body(comm, mode):
    """Same recovery flow on both backends; victim differs only in how
    it dies (thread: mark_dead + RankKilledError, proc: real SIGKILL)."""
    from repro.armci import Armci
    from repro.ga import GlobalArray
    from repro.mpi.errors import CommRevokedError, TargetFailedError
    from repro.mpi.runtime import RankKilledError
    from repro.recover import recover

    victim = 1
    armci = Armci.init(comm)
    ga = _seed_ga(armci)
    ckpt = None
    try:
        ckpt = ga.checkpoint()
        if comm.rank == victim:
            if mode == "proc":
                os.kill(os.getpid(), signal.SIGKILL)
            rt = comm.runtime
            with rt.cond:
                rt.mark_dead(comm.world_rank(victim))
            raise RankKilledError(f"rank {victim} dies")
        for _ in range(200):
            comm.allgather(comm.rank)
        flag = 1
    except RankKilledError:
        raise
    except (TargetFailedError, RankFailedError, CommRevokedError):
        armci.world.revoke()
        flag = 0
    if not armci.world.agree(flag):
        armci, _report = recover(armci)
        have_ckpt = ckpt is not None and np.array_equal(ckpt.data, _ga_base())
        if armci.world.agree(1 if have_ckpt else 0):
            ga = GlobalArray.restore(armci, ckpt)
        else:
            ga = _seed_ga(armci)
    full = ga.get([0, 0], list(_GA_SHAPE))
    ga.sync()
    return armci.nproc, full.tobytes()


def test_thread_proc_recovery_parity():
    thread_out = Runtime(NPROC, watchdog_s=10.0).spmd(_recovery_parity_body, "thread")
    proc_out = proc_spmd(NPROC, _recovery_parity_body, "proc")
    t_live = [r for r in thread_out if r is not None]
    p_live = [r for r in proc_out if r is not None]
    assert proc_out[1] is None
    assert len(t_live) == len(p_live) == NPROC - 1
    # both backends converge to the same shrunken world and the same
    # restored bytes
    for nproc, blob in t_live + p_live:
        assert nproc == NPROC - 1
        assert blob == _ga_base().tobytes()


# ---------------------------------------------------------------------------
# the proc-capable fault injector
# ---------------------------------------------------------------------------


def _slow_rounds_body(comm, rounds, pause_s):
    for _ in range(rounds):
        comm.barrier()
        time.sleep(pause_s)
    return comm.allgather(comm.rank)


def test_proc_fault_injector_kill_surfaces_rankfailed():
    from repro.faults import ProcFaultInjector, ProcFaultPlan

    rt = Runtime(NPROC, backend="proc")
    rt.faults = ProcFaultInjector(ProcFaultPlan(seed=0).kill(2, after_s=0.4))
    with pytest.raises(RankFailedError, match="rank 2"):
        rt.spmd(_slow_rounds_body, 200, 0.02, join_timeout=60.0)
    assert ("kill", 2) in [(k, r) for k, r, _t in rt.faults.fired]


def test_proc_fault_injector_stall_is_suspected_not_dead():
    """A SIGSTOPped rank's lease goes stale, but its pid stays alive:
    the detector must keep it in 'suspected' forever rather than declare
    death, and the run completes after SIGCONT."""
    from repro.faults import ProcFaultInjector, ProcFaultPlan

    rt = Runtime(
        NPROC, backend="proc", heartbeat_s=0.02, suspect_after=0.2
    )
    rt.faults = ProcFaultInjector(
        ProcFaultPlan(seed=0).stall(1, after_s=0.2, for_s=1.0)
    )
    out = rt.spmd(_slow_rounds_body, 40, 0.02, join_timeout=60.0)
    assert out == [list(range(NPROC))] * NPROC
    kinds = [(k, r) for k, r, _t in rt.faults.fired]
    assert ("stop", 1) in kinds and ("cont", 1) in kinds


def test_proc_fault_injector_startup_delay_not_mistaken_for_death():
    from repro.faults import ProcFaultInjector, ProcFaultPlan

    rt = Runtime(
        NPROC, backend="proc", heartbeat_s=0.02, suspect_after=0.2
    )
    rt.faults = ProcFaultInjector(ProcFaultPlan(seed=0).delay(0, startup_s=0.8))
    out = rt.spmd(_slow_rounds_body, 5, 0.01, join_timeout=60.0)
    assert out == [list(range(NPROC))] * NPROC


def test_proc_rejects_thread_style_fault_plans():
    from repro.faults import FaultInjector, FaultPlan

    rt = Runtime(2, backend="proc")
    rt.faults = FaultInjector(FaultPlan(seed=0).kill(1, 5))
    with pytest.raises(InternalError, match="repro.faults.proc"):
        rt.spmd(lambda comm: None)


def test_proc_abnormal_exit_leaves_no_shm_segments():
    """SIGKILLed children never run their unlink paths; the parent's
    teardown sweep must leave /dev/shm exactly as it found it."""
    shm = pathlib.Path("/dev/shm")
    if not shm.is_dir():
        pytest.skip("no /dev/shm on this platform")

    def body(comm):
        from repro.armci import Armci

        armci = Armci.init(comm)
        ga = _seed_ga(armci)
        armci.barrier()
        if comm.rank == 1:
            os.kill(os.getpid(), signal.SIGKILL)
        try:
            for _ in range(200):
                armci.barrier()
        except RankFailedError:
            comm.failure_ack()
        return ga.shape

    before = set(shm.glob("repro-*"))
    proc_spmd(NPROC, body)
    leftover = set(shm.glob("repro-*")) - before
    assert not leftover, sorted(p.name for p in leftover)
