"""Tests for the bench harness utilities and the CLI."""

from __future__ import annotations

import subprocess
import sys

import pytest

from repro.bench import Series, format_series_table, format_table, gbps, pow2_sizes
from repro.bench.cli import build_parser, main


def test_pow2_sizes():
    assert pow2_sizes(0, 4) == [1, 2, 4, 8, 16]
    assert pow2_sizes(2, 8, step=3) == [4, 32, 256]


def test_gbps():
    assert gbps(1e9, 1.0) == 1.0
    assert gbps(100, 0.0) == 0.0


def test_series_and_table_formatting():
    s1 = Series(label="a")
    s2 = Series(label="b")
    for x in (1, 2):
        s1.add(x, x * 1.0)
        s2.add(x, x * 2.0)
    text = format_series_table("T", "x", [s1, s2])
    assert "T" in text and "a" in text and "b" in text
    lines = text.splitlines()
    assert len(lines) == 5  # title, rule, header, two rows


def test_series_mismatched_axes_raise():
    s1 = Series(label="a", x=[1], y=[1.0])
    s2 = Series(label="b", x=[2], y=[1.0])
    with pytest.raises(ValueError):
        format_series_table("T", "x", [s1, s2])


def test_format_table_alignment():
    out = format_table("T", ["col", "value"], [["x", 1.23456], ["yy", 2.0]])
    lines = out.splitlines()
    assert all(len(l) == len(lines[2]) for l in lines[2:])


# ---------------------------------------------------------------------------
# CLI
# ---------------------------------------------------------------------------


def test_parser_subcommands():
    parser = build_parser()
    args = parser.parse_args(["fig4", "--platform", "ib", "--kind", "get"])
    assert args.command == "fig4" and args.platform == "ib"
    with pytest.raises(SystemExit):
        parser.parse_args(["fig3", "--platform", "summit"])


def test_cli_table2(capsys):
    assert main(["table2"]) == 0
    out = capsys.readouterr().out
    assert "Cray XE6 (Hopper II)" in out
    assert "MVAPICH2 1.6" in out


def test_cli_fig5(capsys):
    assert main(["fig5"]) == 0
    out = capsys.readouterr().out
    assert "ARMCI-IB, ARMCI Alloc" in out
    assert "MPI, ARMCI Alloc" in out


def test_cli_fig6(capsys):
    assert main(["fig6", "--platform", "ib", "--kind", "ccsd"]) == 0
    out = capsys.readouterr().out
    assert "CCSD time (min)" in out
    assert "192" in out


def test_cli_fig3_sparse(capsys):
    assert main(["fig3", "--platform", "xe6", "--step", "12"]) == 0
    out = capsys.readouterr().out
    assert "Get (MPI)" in out


def test_cli_module_entrypoint():
    proc = subprocess.run(
        [sys.executable, "-m", "repro.bench", "table2"],
        capture_output=True,
        text=True,
        timeout=120,
    )
    assert proc.returncode == 0
    assert "Blue Gene/P" in proc.stdout


def test_parser_hotpath_subcommand():
    p = build_parser()
    args = p.parse_args(["hotpath", "--smoke"])
    assert args.command == "hotpath" and args.smoke
    args = p.parse_args(["hotpath", "--fast", "--write", "--baseline", "x.json"])
    assert args.fast and args.write and args.baseline == "x.json"


def test_hotpath_smoke_alias_passes(capsys, monkeypatch):
    from repro.bench import cli

    monkeypatch.setattr(cli.hotpath, "smoke", lambda baseline=None: (True, "ok"))
    assert main(["--hotpath-smoke"]) == 0
    assert "ok" in capsys.readouterr().out


def test_hotpath_smoke_failure_exits_nonzero(capsys, monkeypatch):
    from repro.bench import cli

    monkeypatch.setattr(
        cli.hotpath, "smoke", lambda baseline=None: (False, "REGRESSED")
    )
    assert main(["hotpath", "--smoke"]) == 1
    assert "REGRESSED" in capsys.readouterr().out


def test_parser_mpi3_subcommand():
    p = build_parser()
    args = p.parse_args(["mpi3", "--smoke"])
    assert args.command == "mpi3" and args.smoke
    args = p.parse_args(["mpi3", "--fast", "--write", "--baseline", "x.json"])
    assert args.fast and args.write and args.baseline == "x.json"


def test_mpi3_smoke_alias_passes(capsys, monkeypatch):
    from repro.bench import cli, mpi3_smoke

    monkeypatch.setattr(mpi3_smoke, "smoke", lambda baseline=None: (True, "ok"))
    assert main(["--mpi3-smoke"]) == 0
    assert "ok" in capsys.readouterr().out


def test_mpi3_smoke_failure_exits_nonzero(capsys, monkeypatch):
    from repro.bench import mpi3_smoke

    monkeypatch.setattr(
        mpi3_smoke, "smoke", lambda baseline=None: (False, "REGRESSED")
    )
    assert main(["mpi3", "--smoke"]) == 1
    assert "REGRESSED" in capsys.readouterr().out


def test_mpi3_measure_and_write(tmp_path, capsys, monkeypatch):
    from repro.bench import mpi3_smoke

    fake = {
        "small_put": {
            "mpi2_s_per_op": 5e-6,
            "mpi3_s_per_op": 5e-7,
            "mpi3_coalesced_s_per_op": 3e-8,
            "mpi3_speedup": 10.0,
            "coalesce_speedup": 16.7,
        }
    }
    monkeypatch.setattr(mpi3_smoke, "measure", lambda fast=False: fake)
    out_file = tmp_path / "BENCH.json"
    assert main(["mpi3", "--write", "--baseline", str(out_file)]) == 0
    assert out_file.exists()
    assert "small_put" in capsys.readouterr().out


def test_mpi3_smoke_real_gate_passes():
    from repro.bench import mpi3_smoke

    ok, report = mpi3_smoke.smoke()
    assert ok, report
    assert "MPI3 SMOKE: ok" in report


def test_hotpath_measure_and_write(tmp_path, capsys, monkeypatch):
    from repro.bench import cli

    fake = {
        "pack_uniform_1024": {
            "optimized_s": 1e-6, "baseline_s": 1e-5, "speedup": 10.0
        }
    }
    monkeypatch.setattr(cli.hotpath, "measure", lambda fast=False: fake)
    out_file = tmp_path / "BENCH.json"
    assert main(["hotpath", "--write", "--baseline", str(out_file)]) == 0
    assert out_file.exists()
    assert "pack_uniform_1024" in capsys.readouterr().out
