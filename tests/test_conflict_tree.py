"""Tests for the §VI-B AVL conflict tree, incl. property tests vs naive."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.armci.conflict_tree import (
    ConflictTree,
    any_overlap_naive,
    any_overlap_tree,
)


def test_insert_disjoint():
    t = ConflictTree()
    assert t.insert(0, 9)
    assert t.insert(10, 19)
    assert t.insert(30, 39)
    assert len(t) == 3
    t.check_invariants()


def test_insert_conflict_rejected_and_tree_unchanged():
    t = ConflictTree()
    assert t.insert(10, 20)
    assert not t.insert(15, 25)
    assert not t.insert(5, 10)  # touches the lo end (closed interval)
    assert not t.insert(20, 30)  # touches the hi end
    assert not t.insert(0, 100)  # fully covers
    assert not t.insert(12, 18)  # fully inside
    assert len(t) == 1
    t.check_invariants()


def test_adjacent_ranges_do_not_conflict():
    t = ConflictTree()
    assert t.insert(0, 9)
    assert t.insert(10, 19)  # closed intervals: [0,9] and [10,19] disjoint


def test_conflicts_query_is_readonly():
    t = ConflictTree()
    t.insert(5, 10)
    assert t.conflicts(7, 8)
    assert not t.conflicts(11, 20)
    assert len(t) == 1


def test_inverted_range_raises():
    t = ConflictTree()
    with pytest.raises(ValueError):
        t.insert(10, 5)
    with pytest.raises(ValueError):
        t.conflicts(10, 5)


def test_single_byte_ranges():
    t = ConflictTree()
    for i in range(100):
        assert t.insert(i, i)
    assert not t.insert(50, 50)
    assert len(t) == 100


def test_ranges_iteration_sorted():
    t = ConflictTree()
    for lo in (50, 10, 30, 70, 90):
        t.insert(lo, lo + 5)
    assert [lo for lo, _ in t.ranges()] == [10, 30, 50, 70, 90]


def test_balance_under_sequential_insert():
    """Ascending inserts must stay logarithmic (the AVL property)."""
    t = ConflictTree()
    n = 4096
    for i in range(n):
        assert t.insert(i * 10, i * 10 + 5)
    t.check_invariants()
    # AVL height bound: 1.44 * log2(n+2)
    import math

    assert t.height <= 1.45 * math.log2(n + 2) + 1


def test_helpers_agree_on_examples():
    disjoint = [(0, 4), (10, 14), (20, 24)]
    overlapping = [(0, 10), (5, 15)]
    assert not any_overlap_tree(disjoint)
    assert not any_overlap_naive(disjoint)
    assert any_overlap_tree(overlapping)
    assert any_overlap_naive(overlapping)


@settings(max_examples=200, deadline=None)
@given(
    st.lists(
        st.tuples(st.integers(0, 300), st.integers(0, 30)),
        min_size=0,
        max_size=40,
    )
)
def test_tree_matches_naive_oracle(pairs):
    """Property: the O(N log N) tree and the O(N²) scan always agree."""
    ranges = [(lo, lo + ln) for lo, ln in pairs]
    assert any_overlap_tree(ranges) == any_overlap_naive(ranges)


@settings(max_examples=100, deadline=None)
@given(
    st.lists(
        st.tuples(st.integers(0, 10_000), st.integers(0, 50)),
        min_size=1,
        max_size=60,
    )
)
def test_invariants_hold_after_any_insert_sequence(pairs):
    t = ConflictTree()
    inserted = []
    for lo, ln in pairs:
        if t.insert(lo, lo + ln):
            inserted.append((lo, lo + ln))
    t.check_invariants()
    assert len(t) == len(inserted)
    # everything reported inserted must be found, in sorted order
    assert list(t.ranges()) == sorted(inserted)
