"""Differential & property-based system tests.

Strategy: generate random-but-seeded workloads, run them through BOTH
ARMCI implementations (ARMCI-MPI over the strict simulated MPI, and the
simulated native ARMCI), and through a plain-NumPy sequential oracle
where one exists.  All three must agree bit-for-bit — the strongest
evidence the ARMCI-MPI semantics machinery (epochs, staging, IOV
methods, strided translation) preserves data.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.armci import Armci, ArmciConfig
from repro.armci_native import NativeArmci
from repro.ga import GlobalArray, gather, scatter_acc, zero

from conftest import spmd


def _run_patch_workload(flavor: str, ops: list, shape, nproc: int) -> np.ndarray:
    """Apply a scripted patch-op sequence on a GA; return the full array."""
    out = {}

    def main(comm):
        rt = Armci.init(comm) if flavor == "mpi" else NativeArmci.init(comm)
        ga = GlobalArray.create(rt, shape, "f8")
        zero(ga)
        for issuer, kind, lo, hi, seed, alpha in ops:
            if rt.my_id == issuer:
                rng = np.random.default_rng(seed)
                patch_shape = tuple(h - l for l, h in zip(lo, hi))
                data = rng.random(patch_shape)
                if kind == "put":
                    ga.put(lo, hi, data)
                else:
                    ga.acc(lo, hi, data, alpha=alpha)
            ga.sync()  # serialise scripted ops so the oracle is exact
        out["full"] = ga.get(tuple(0 for _ in shape), shape)
        ga.sync()
        ga.destroy()

    spmd(nproc, main)
    return out["full"]


def _oracle_patch_workload(ops: list, shape) -> np.ndarray:
    arr = np.zeros(shape)
    for _issuer, kind, lo, hi, seed, alpha in ops:
        rng = np.random.default_rng(seed)
        patch_shape = tuple(h - l for l, h in zip(lo, hi))
        data = rng.random(patch_shape)
        sl = tuple(slice(l, h) for l, h in zip(lo, hi))
        if kind == "put":
            arr[sl] = data
        else:
            arr[sl] += alpha * data
    return arr


@st.composite
def patch_ops(draw, shape, nproc):
    n = draw(st.integers(1, 6))
    ops = []
    for i in range(n):
        lo, hi = [], []
        for extent in shape:
            a = draw(st.integers(0, extent - 1))
            b = draw(st.integers(a + 1, extent))
            lo.append(a)
            hi.append(b)
        ops.append(
            (
                draw(st.integers(0, nproc - 1)),
                draw(st.sampled_from(["put", "acc"])),
                tuple(lo),
                tuple(hi),
                draw(st.integers(0, 2**16)),
                draw(st.sampled_from([1.0, 0.5, 2.0])),
            )
        )
    return ops


@settings(max_examples=10, deadline=None)
@given(ops=patch_ops(shape=(6, 7), nproc=4))
def test_ga_patch_ops_match_oracle_and_native(ops):
    shape = (6, 7)
    mpi_res = _run_patch_workload("mpi", ops, shape, 4)
    oracle = _oracle_patch_workload(ops, shape)
    np.testing.assert_allclose(mpi_res, oracle, rtol=1e-13)
    native_res = _run_patch_workload("native", ops, shape, 4)
    np.testing.assert_array_equal(mpi_res, native_res)


@settings(max_examples=8, deadline=None)
@given(
    seed=st.integers(0, 2**16),
    method=st.sampled_from(["auto", "conservative", "batched", "direct"]),
)
def test_iov_methods_agree_with_each_other(seed, method):
    """Random disjoint IOV scatters: every method moves identical bytes."""
    rng = np.random.default_rng(seed)
    nsegs = int(rng.integers(1, 12))
    seg = int(rng.integers(1, 4)) * 8
    # disjoint remote offsets
    offs = (rng.permutation(16)[:nsegs] * 32).astype(np.int64)
    payload = rng.integers(0, 255, size=nsegs * seg, dtype=np.uint8)
    out = {}

    def main(comm):
        rt = Armci.init(comm, ArmciConfig(iov_method=method))
        ptrs = rt.malloc(1024)
        if rt.my_id == 0:
            rt.putv(
                payload.copy(),
                [i * seg for i in range(nsegs)],
                [ptrs[1] + int(o) for o in offs],
                seg,
            )
        rt.barrier()
        if rt.my_id == 1:
            v = np.zeros(1024, dtype=np.uint8)
            rt.get(ptrs[1], v)
            out["mem"] = v.copy()
        rt.barrier()
        rt.free(ptrs[rt.my_id])

    spmd(2, main)
    expect = np.zeros(1024, dtype=np.uint8)
    for i, o in enumerate(offs):
        expect[o : o + seg] = payload[i * seg : (i + 1) * seg]
    np.testing.assert_array_equal(out["mem"], expect)


@settings(max_examples=8, deadline=None)
@given(
    seed=st.integers(0, 2**16),
    strided_method=st.sampled_from(["direct", "iov"]),
)
def test_random_strided_roundtrip(seed, strided_method):
    """Random nested strided layouts: put then get must round-trip, on
    both the direct (subarray datatype) and IOV translation paths."""
    rng = np.random.default_rng(seed)
    seg = int(rng.integers(1, 5)) * 8
    n1 = int(rng.integers(1, 5))
    n2 = int(rng.integers(1, 4))
    s1 = seg + int(rng.integers(0, 3)) * 8
    s2 = s1 * n1 + int(rng.integers(0, 2)) * 8
    count = [seg, n1, n2]
    span = s2 * (n2 - 1) + s1 * (n1 - 1) + seg
    payload = rng.random(span // 8 + 1)
    out = {}

    def main(comm):
        rt = Armci.init(comm, ArmciConfig(strided_method=strided_method))
        ptrs = rt.malloc(span + 64)
        if rt.my_id == 0:
            rt.put_s(payload, [s1, s2], ptrs[1], [s1, s2], count)
            back = np.zeros_like(payload)
            rt.get_s(ptrs[1], [s1, s2], back, [s1, s2], count)
            out["ok"] = True
            # compare only the strided footprint
            from repro.armci.strided import segment_displacements

            src = payload.view(np.uint8)
            dst = back.view(np.uint8)
            for d in segment_displacements([s1, s2], count).tolist():
                np.testing.assert_array_equal(
                    dst[d : d + seg], src[d : d + seg]
                )
        rt.barrier()
        rt.free(ptrs[rt.my_id])

    spmd(2, main)
    assert out.get("ok", True)


def test_concurrent_scatter_acc_all_runtimes():
    """Hammer one GA with scatter_acc from every rank; both stacks agree."""

    def run(flavor):
        out = {}

        def main(comm):
            rt = (
                Armci.init(comm) if flavor == "mpi" else NativeArmci.init(comm)
            )
            ga = GlobalArray.create(rt, (10,), "f8")
            zero(ga)
            subs = [(i,) for i in range(10)]
            for _ in range(5):
                scatter_acc(ga, subs, np.ones(10), alpha=0.25)
            ga.sync()
            out["v"] = gather(ga, subs)
            ga.sync()
            ga.destroy()

        spmd(4, main)
        return out["v"]

    a, b = run("mpi"), run("native")
    np.testing.assert_array_equal(a, b)
    np.testing.assert_allclose(a, np.full(10, 0.25 * 5 * 4), rtol=1e-13)


def test_mixed_runtime_workload_stats_consistency():
    """ARMCI-MPI op counters must match the issued workload exactly."""

    def main(comm):
        rt = Armci.init(comm)
        ptrs = rt.malloc(256)
        for i in range(3):
            rt.put(np.zeros(2), ptrs[rt.my_id] + 16 * i)
        for _ in range(2):
            rt.acc(np.ones(2), ptrs[(rt.my_id + 1) % rt.nproc])
        rt.barrier()
        assert rt.stats.puts == 3 * rt.nproc
        assert rt.stats.accs == 2 * rt.nproc
        assert rt.stats.bytes_put == 3 * 16 * rt.nproc
        rt.free(ptrs[rt.my_id])

    spmd(3, main)
