"""Docs-consistency gate: what the docs mention must actually exist.

Three classes of reference across ``README.md``, ``DESIGN.md``, and
``docs/*.md`` are machine-checked so prose cannot silently rot:

* ``python -m repro.<module> …`` invocations — the module must import,
  and every ``--flag`` on the invocation line must appear literally in
  that module's source tree (argparse definitions live there);
* backticked dotted names (``repro.mpi.backend_proc``,
  ``repro.bench.procs_smoke.smoke``, …) and ``src/repro/...`` /
  ``tests/...`` style paths — must resolve to an importable module (+
  attribute chain) or an existing file;
* relative markdown links ``](...)`` — must point at an existing file
  or directory.

The checks are deliberately literal: a flag renamed in ``cli.py`` or a
module moved in a refactor fails this test until the docs catch up.
"""

from __future__ import annotations

import importlib
import pathlib
import re

import pytest

REPO = pathlib.Path(__file__).resolve().parents[1]

DOC_FILES = sorted(
    [REPO / "README.md", REPO / "DESIGN.md"] + list((REPO / "docs").glob("*.md"))
)

assert DOC_FILES, "doc set must not be empty"


def _doc_id(path: pathlib.Path) -> str:
    return str(path.relative_to(REPO))


# ---------------------------------------------------------------------------
# CLI invocations: python -m repro.X --flag ...
# ---------------------------------------------------------------------------

_INVOCATION = re.compile(r"python\s+-m\s+(repro(?:\.\w+)*)([^\n`]*)")
_FLAG = re.compile(r"(--[a-z0-9][a-z0-9-]*)")


def _package_sources(module_name: str) -> str:
    """Concatenated source of the module (or package tree) behind ``-m``.

    Thin shims (``repro.sanitize`` re-exporting ``repro.sanitizer.cli``)
    are followed through their ``main`` callable so flags are looked up
    where the argparse definitions actually live.
    """
    mod = importlib.import_module(module_name)
    origin = pathlib.Path(mod.__file__)
    if origin.name == "__init__.py":
        files = sorted(origin.parent.rglob("*.py"))
    else:
        files = [origin]
    main = getattr(mod, "main", None)
    impl = getattr(main, "__module__", module_name)
    if impl != module_name and impl.startswith("repro."):
        impl_origin = pathlib.Path(importlib.import_module(impl).__file__)
        files.extend(
            sorted(impl_origin.parent.rglob("*.py"))
            if impl_origin.name == "__init__.py"
            else [impl_origin]
        )
    return "\n".join(f.read_text() for f in files)


@pytest.mark.parametrize("doc", DOC_FILES, ids=_doc_id)
def test_cli_invocations_resolve(doc):
    text = doc.read_text()
    problems = []
    for match in _INVOCATION.finditer(text):
        module_name, rest = match.group(1), match.group(2)
        try:
            source = _package_sources(module_name)
        except ImportError as exc:
            problems.append(f"`python -m {module_name}`: module not importable ({exc})")
            continue
        for flag in _FLAG.findall(rest):
            if flag not in source:
                problems.append(
                    f"`python -m {module_name} … {flag}`: flag not found in "
                    f"{module_name}'s sources"
                )
    assert not problems, f"{_doc_id(doc)}:\n" + "\n".join(f"  - {p}" for p in problems)


# ---------------------------------------------------------------------------
# backticked dotted names and file paths
# ---------------------------------------------------------------------------

_CODE_SPAN = re.compile(r"`([^`\n]+)`")
_DOTTED = re.compile(r"^repro(?:\.[A-Za-z_][A-Za-z0-9_]*)+$")
_PATHLIKE = re.compile(r"^(?:src|tests|docs|benchmarks|examples)/[\w./\-]+$")


def _resolves_as_module(dotted: str) -> bool:
    """Import the longest module prefix, then walk attributes."""
    parts = dotted.split(".")
    for cut in range(len(parts), 0, -1):
        try:
            obj = importlib.import_module(".".join(parts[:cut]))
        except ImportError:
            continue
        try:
            for attr in parts[cut:]:
                obj = getattr(obj, attr)
        except AttributeError:
            return False
        return True
    return False


@pytest.mark.parametrize("doc", DOC_FILES, ids=_doc_id)
def test_code_spans_resolve(doc):
    text = doc.read_text()
    problems = []
    for span in _CODE_SPAN.findall(text):
        token = span.strip().rstrip("()")
        if _DOTTED.match(token):
            if not _resolves_as_module(token):
                problems.append(f"`{span}`: dotted name does not resolve")
        elif _PATHLIKE.match(token):
            if not (REPO / token).exists():
                problems.append(f"`{span}`: path does not exist")
    assert not problems, f"{_doc_id(doc)}:\n" + "\n".join(f"  - {p}" for p in problems)


# ---------------------------------------------------------------------------
# relative markdown links
# ---------------------------------------------------------------------------

_LINK = re.compile(r"\]\(([^)\s]+)\)")


@pytest.mark.parametrize("doc", DOC_FILES, ids=_doc_id)
def test_relative_links_resolve(doc):
    text = doc.read_text()
    problems = []
    for target in _LINK.findall(text):
        if target.startswith(("http://", "https://", "mailto:", "#")):
            continue
        rel = target.split("#", 1)[0]
        if not rel:
            continue
        if not (doc.parent / rel).exists():
            problems.append(f"]({target}): broken relative link")
    assert not problems, f"{_doc_id(doc)}:\n" + "\n".join(f"  - {p}" for p in problems)
