"""Every example must run cleanly end to end (they are part of the API)."""

from __future__ import annotations

import pathlib
import subprocess
import sys

import pytest

EXAMPLES = sorted(
    (pathlib.Path(__file__).parent.parent / "examples").glob("*.py")
)


def test_examples_exist():
    names = {p.stem for p in EXAMPLES}
    assert {"quickstart", "ga_patches", "nwchem_ccsd",
            "dynamic_load_balance", "strided_methods"} <= names


@pytest.mark.parametrize("script", EXAMPLES, ids=lambda p: p.stem)
def test_example_runs(script):
    proc = subprocess.run(
        [sys.executable, str(script)],
        capture_output=True,
        text=True,
        timeout=180,
    )
    assert proc.returncode == 0, f"{script.name} failed:\n{proc.stderr}"
    assert "OK" in proc.stdout, f"{script.name} did not report success"
