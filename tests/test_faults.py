"""Fault-injection tests: the §V-D protocols under seeded failures.

Three layers:

* **plan/injector mechanics** — serialization round-trips, the builder
  API, single-use enforcement, the ambient ``pytest --faults`` hook;
* **the kill matrix** — rank death injected at *every* fuzz point of the
  mutex-handoff and GMR-free-with-NULL-slices scenarios (and a sampled
  stride of the RMW scenario) must end gracefully: either the run
  completes or it fails with a typed
  :class:`~repro.mpi.errors.TargetFailedError`, with zero sanitizer
  violations and bit-identical replay from ``(seed, plan)``;
* **graceful degradation** — deterministic mutex-holder-death recovery
  (the next waiter receives :class:`MutexHolderFailed` and owns the
  repaired mutex) and the watchdog / per-op-timeout independence fixed
  in this change: a timeout retry in flight must not trip the deadlock
  watchdog, and both knobs configure independently via constructor or
  ``REPRO_*`` environment variables.
"""

from __future__ import annotations

import functools

import numpy as np
import pytest

from repro.faults import (
    Corrupt,
    Delay,
    FaultInjector,
    FaultPlan,
    Kill,
    MutexHolderFailed,
    RECOVER_SCENARIOS,
    SCENARIOS,
    Stall,
)
from repro.faults.cli import graceful, main as faults_main
from repro.armci.mutexes import MutexSet
from repro.mpi.errors import (
    CommRevokedError,
    OpTimeoutError,
    RankKilledError,
    RetriesExhausted,
    TargetFailedError,
)
from repro.mpi.progress import DeterministicSchedule
from repro.mpi.runtime import Runtime
from repro.sanitizer.fuzz import run_schedule

NPROC = 3
SEED = 2012


# -- plan mechanics ----------------------------------------------------------------


def test_plan_builder_is_immutable_and_composable():
    base = FaultPlan(seed=7)
    grown = base.kill(1, 5).stall(0, 2, steps=3).corrupt(4).drop(9).delay(
        jitter_frac=0.1, latency_factor=2.0
    )
    assert base.empty and not grown.empty
    assert grown.kills == (Kill(rank=1, point=5),)
    assert grown.stalls == (Stall(rank=0, point=2, steps=3),)
    assert {c.mode for c in grown.corruptions} == {"corrupt", "drop"}
    assert grown.delays[0].latency_factor == 2.0


def test_plan_round_trips_through_json():
    plan = (
        FaultPlan(seed=3)
        .kill(2, 11, kind="rma:put")
        .stall(1, 4, steps=2)
        .corrupt(6)
        .drop(8)
        .delay(jitter_frac=0.25, bw_factor=0.5)
    )
    again = FaultPlan.from_json(plan.to_json())
    assert again == plan
    assert again.key() == plan.key()
    assert "kill" in plan.describe()


def test_plan_validates_specs():
    with pytest.raises(ValueError):
        Corrupt(op=0, mode="mangle")
    with pytest.raises(ValueError):
        Delay(jitter_frac=-0.5)


def test_injector_is_single_use():
    inj = FaultInjector(FaultPlan(seed=0))
    rt1, rt2 = Runtime(1), Runtime(1)
    inj.begin_run(rt1)
    inj.begin_run(rt1)  # idempotent for the same runtime
    with pytest.raises(RuntimeError):
        inj.begin_run(rt2)


@pytest.mark.faults
def test_ambient_marker_attaches_a_benign_injector():
    rt = Runtime(2)
    assert isinstance(rt.faults, FaultInjector)
    assert rt.faults.plan.empty


# -- the kill matrix ----------------------------------------------------------------


@functools.lru_cache(maxsize=None)
def _fuzz_points(name: str) -> dict[int, int]:
    """Fuzz points per rank in scenario ``name`` under the pinned seed.

    An empty plan changes nothing but counts every point, so the matrix
    below provably covers each one.
    """
    inj = FaultInjector(FaultPlan(seed=SEED))
    rt = Runtime(NPROC, seed=SEED)
    DeterministicSchedule(SEED).begin_run(rt)
    rt.faults = inj
    rt.spmd(SCENARIOS[name])
    counts = inj.point_counts()
    assert counts and all(counts.get(r, 0) > 0 for r in range(NPROC))
    return counts


def _assert_kill_grid(name: str, victim: int, stride: int = 1) -> None:
    fn = SCENARIOS[name]
    failures = []
    for point in range(0, _fuzz_points(name)[victim], stride):
        plan = FaultPlan(seed=SEED).kill(victim, point)
        report = run_schedule(fn, NPROC, SEED, sanitize=True, plan=plan)
        if not graceful(report):
            failures.append((point, report.error))
        elif report.violations:
            failures.append((point, report.violations))
        elif not report.ok and victim not in report.dead_ranks:
            failures.append((point, f"failed without the kill firing: {report.error}"))
    assert not failures, f"{name}: non-graceful kills at {failures}"


@pytest.mark.parametrize("victim", range(NPROC))
def test_mutex_handoff_survives_death_at_every_fuzz_point(victim):
    _assert_kill_grid("mutex", victim)


@pytest.mark.parametrize("victim", range(NPROC))
def test_gmr_free_with_null_slices_survives_death_at_every_fuzz_point(victim):
    _assert_kill_grid("gmr_free", victim)


@pytest.mark.parametrize("victim", range(NPROC))
def test_rmw_survives_death_at_sampled_fuzz_points(victim):
    _assert_kill_grid("rmw", victim, stride=5)


def test_failing_plan_replays_bit_identically():
    plan = FaultPlan(seed=SEED).kill(1, 3)
    a = run_schedule(SCENARIOS["mutex"], NPROC, SEED, plan=plan)
    b = run_schedule(SCENARIOS["mutex"], NPROC, SEED, plan=plan)
    assert a.digest == b.digest
    assert a.error == b.error
    assert a.fault_events == b.fault_events > 0
    assert a.dead_ranks == [1]
    # the plan is part of the digest: the same seed without it diverges
    assert run_schedule(SCENARIOS["mutex"], NPROC, SEED).digest != a.digest


def test_stall_and_jitter_perturb_but_complete():
    plan = FaultPlan(seed=SEED).stall(0, 2, steps=4).delay(jitter_frac=0.2)
    a = run_schedule(SCENARIOS["rmw"], NPROC, SEED, plan=plan)
    b = run_schedule(SCENARIOS["rmw"], NPROC, SEED, plan=plan)
    assert a.ok and not a.violations
    assert a.fault_events >= 1
    assert a.digest == b.digest


def test_corrupt_and_drop_are_silent_data_faults():
    for plan in (FaultPlan(seed=SEED).corrupt(2), FaultPlan(seed=SEED).drop(2)):
        report = run_schedule(SCENARIOS["gmr_free"], NPROC, SEED, plan=plan)
        # the protocol completes; only payload bits were harmed
        assert report.ok, report.error
        assert report.fault_events == 1


def test_cli_kill_run_is_graceful(capsys):
    rc = faults_main(
        ["scenario:mutex", "--nproc", "3", "--seed", str(SEED),
         "--schedules", "2", "--kill", "1@3"]
    )
    out = capsys.readouterr().out
    assert rc == 0
    assert "kill" in out


# -- graceful degradation ----------------------------------------------------------


def test_mutex_holder_death_forwards_structured_failure():
    """The §V-D recovery path, deterministically staged in wall mode.

    Rank 1 takes the mutex, waits until rank 0 is visibly enqueued in
    the Latham byte vector, then dies mid-critical-section.  The death
    hook must repair the vector and forward the handoff, so rank 0's
    pending receive completes with a structured
    :class:`MutexHolderFailed` — after which rank 0 *owns* the repaired
    mutex and can unlock it.
    """
    observed = {}
    rt = Runtime(NPROC, watchdog_s=1.0)

    def body(comm):
        ms = MutexSet.create(comm, 1)
        if comm.rank == 1:
            ms.lock(0, 0)
            vec = ms._win.exposed_buffer(0)
            with rt.cond:
                rt.wait_for(lambda: vec[0] == 1, what="waiter 0 enqueued")
                rt.mark_dead(comm.world_rank(1))
            raise RankKilledError("rank 1 dies holding mutex 0")
        if comm.rank == 0:
            with rt.cond:
                rt.wait_for(
                    lambda: ms._holders.get((0, 0)) == 1,
                    what="rank 1 holds the mutex",
                )
            try:
                ms.lock(0, 0)
            except MutexHolderFailed as exc:
                observed.update(
                    mutex=exc.mutex, host=exc.host, dead=exc.dead_rank
                )
            # we own the repaired mutex either way and must release it
            ms.unlock(0, 0)
        return "done"
        # no destroy: it is collective and rank 1 is dead

    results = rt.spmd(body)
    assert observed == {"mutex": 0, "host": 0, "dead": 1}
    assert results[0] == results[2] == "done"
    assert results[1] is None  # the killed rank produced no result
    assert rt.dead_ranks == {1}
    assert rt.death_hook_errors == []


def test_watchdog_and_op_timeout_configure_independently(monkeypatch):
    monkeypatch.setenv("REPRO_WATCHDOG_S", "3.25")
    monkeypatch.setenv("REPRO_OP_TIMEOUT_S", "0.125")
    monkeypatch.setenv("REPRO_OP_RETRIES", "5")
    rt = Runtime(1)
    assert (rt.watchdog_s, rt.op_timeout_s, rt.op_retries) == (3.25, 0.125, 5)
    # constructor arguments beat the environment, knob by knob
    rt = Runtime(1, watchdog_s=0.7, op_retries=1)
    assert (rt.watchdog_s, rt.op_timeout_s, rt.op_retries) == (0.7, 0.125, 1)
    # with nothing configured, per-op timeouts stay disabled
    monkeypatch.delenv("REPRO_OP_TIMEOUT_S")
    monkeypatch.delenv("REPRO_WATCHDOG_S")
    assert Runtime(1).op_timeout_s is None
    assert Runtime(1).watchdog_s == 2.0


def test_watchdog_stays_quiet_while_a_timeout_retry_is_in_flight():
    """Regression for the ``watchdog_s`` / per-op-timeout entanglement.

    Rank 0 parks on a mutex it holds while rank 1's acquisition exhausts
    its per-op timeout budget (timeouts much shorter than the watchdog).
    The shortened condition waits must not let the watchdog declare a
    global deadlock: rank 1 gets a clean :class:`OpTimeoutError`, its
    queue entry is withdrawn, and the run finishes — destroy included.
    """
    rt = Runtime(2, watchdog_s=0.8, op_timeout_s=0.05, op_retries=2)
    outcome = {}

    def body(comm):
        ms = MutexSet.create(comm, 1)
        with rt.cond:
            gave_up = rt.shared.setdefault("gave_up", [])
        if comm.rank == 0:
            ms.lock(0, 0)
            with rt.cond:
                rt.wait_for(lambda: gave_up, what="waiter gave up")
            ms.unlock(0, 0)
        else:
            with rt.cond:
                rt.wait_for(
                    lambda: ms._holders.get((0, 0)) == 0,
                    what="rank 0 holds the mutex",
                )
            try:
                ms.lock(0, 0)
            except OpTimeoutError:
                outcome["timed_out"] = True
            with rt.cond:
                gave_up.append(True)
                rt.notify_progress()
        comm.barrier()
        ms.destroy()
        return "done"

    results = rt.spmd(body)
    assert outcome == {"timed_out": True}
    assert results == ["done", "done"]


# -- the ULFM-analogue primitives --------------------------------------------------


def test_ft_agree_is_and_over_live_contributions():
    """``agree`` returns the AND of live contributions and completes even
    when a member dies instead of contributing."""
    rt = Runtime(NPROC, watchdog_s=2.0)

    def body(comm):
        assert comm.agree(1) == 1
        assert comm.agree(0 if comm.rank == 1 else 1) == 0
        if comm.rank == 1:
            with rt.cond:
                rt.mark_dead(comm.world_rank(1))
            raise RankKilledError("rank 1 dies before the third agreement")
        return comm.agree(1)

    results = rt.spmd(body)
    assert results[0] == results[2] == 1
    assert results[1] is None


def test_ft_failure_ack_and_get_acked():
    rt = Runtime(NPROC, watchdog_s=2.0)

    def body(comm):
        if comm.rank == 2:
            with rt.cond:
                rt.mark_dead(comm.world_rank(2))
            raise RankKilledError("rank 2 dies")
        with rt.cond:
            rt.wait_for(lambda: rt.dead_ranks, what="death observed")
        assert list(comm.failure_get_acked().members) == []
        comm.failure_ack()
        assert list(comm.failure_get_acked().members) == [comm.world_rank(2)]
        return "ok"

    results = rt.spmd(body)
    assert results[0] == results[1] == "ok"


def test_ft_revoke_poisons_operations_with_a_typed_error():
    """After any member revokes, every other member's operation fails with
    :class:`CommRevokedError` — but ``agree`` and ``shrink`` still work."""
    rt = Runtime(NPROC, watchdog_s=2.0)

    def body(comm):
        if comm.rank == 0:
            comm.revoke()
            comm.revoke()  # idempotent
        with pytest.raises(CommRevokedError):
            comm.barrier()
        assert comm.agree(1) == 1
        new = comm.shrink()
        assert new.size == NPROC and not new.revoked
        new.barrier()
        return "ok"

    assert rt.spmd(body) == ["ok"] * NPROC


def test_ft_shrink_densely_reranks_survivors():
    rt = Runtime(4, watchdog_s=2.0)

    def body(comm):
        if comm.rank == 1:
            with rt.cond:
                rt.mark_dead(comm.world_rank(1))
            raise RankKilledError("rank 1 dies")
        with rt.cond:
            rt.wait_for(lambda: rt.dead_ranks, what="death observed")
        new = comm.shrink()
        assert new.size == 3
        # rank i of the shrunken comm is the i-th smallest surviving rank
        assert new.rank == {0: 0, 2: 1, 3: 2}[comm.rank]
        new.barrier()  # the shrunken communicator is fully operational
        return new.rank

    assert rt.spmd(body) == [0, None, 1, 2]


# -- the recover matrix ------------------------------------------------------------


RECOVER_STRIDE = {
    "mutex": 5, "rmw": 5, "gmr": 1, "ga": 2,
    "rmw_mpi3": 5, "gmr_mpi3": 1, "nbq_mpi3": 3,
}


@functools.lru_cache(maxsize=None)
def _recover_fuzz_points(name: str) -> dict[int, int]:
    inj = FaultInjector(FaultPlan(seed=SEED))
    rt = Runtime(NPROC, seed=SEED)
    DeterministicSchedule(SEED).begin_run(rt)
    rt.faults = inj
    rt.spmd(RECOVER_SCENARIOS[name])
    counts = inj.point_counts()
    assert counts and all(counts.get(r, 0) > 0 for r in range(NPROC))
    return counts


def _assert_recover_grid(name: str, victim: int) -> None:
    """Unlike the kill grids above (graceful: typed error allowed), the
    recover grid demands *completion*: every survivor must finish the
    protocol value-correct, either on the shrunken world after running
    :func:`repro.recover.recover` or on the full world when the victim
    died only after the attempt was accepted."""
    fn = RECOVER_SCENARIOS[name]
    failures, recovered = [], 0
    for point in range(0, _recover_fuzz_points(name)[victim], RECOVER_STRIDE[name]):
        plan = FaultPlan(seed=SEED).kill(victim, point)
        report = run_schedule(fn, NPROC, SEED, sanitize=True, plan=plan)
        if not report.ok:
            failures.append((point, report.error))
            continue
        if report.violations:
            failures.append((point, report.violations))
            continue
        live = [r for r in report.results if r is not None]
        shrunken = NPROC - len(report.dead_ranks)
        if not live or any(r[0] not in (NPROC, shrunken) for r in live):
            failures.append((point, ("wrong world size", live)))
        recovered += any(r[1] >= 1 for r in live)
    assert not failures, f"recover_{name}: incomplete recoveries at {failures}"
    assert recovered, f"recover_{name}: no kill point exercised recovery"


@pytest.mark.parametrize("victim", range(NPROC))
def test_mutex_recovers_from_death_at_sampled_fuzz_points(victim):
    _assert_recover_grid("mutex", victim)


@pytest.mark.parametrize("victim", range(NPROC))
def test_rmw_recovers_from_death_at_sampled_fuzz_points(victim):
    _assert_recover_grid("rmw", victim)


@pytest.mark.parametrize("victim", range(NPROC))
def test_gmr_rebuild_recovers_from_death_at_every_fuzz_point(victim):
    _assert_recover_grid("gmr", victim)


@pytest.mark.parametrize("victim", range(NPROC))
def test_ga_checkpoint_recovers_from_death_at_sampled_fuzz_points(victim):
    _assert_recover_grid("ga", victim)


@pytest.mark.parametrize("victim", range(NPROC))
def test_mpi3_rmw_recovers_from_death_at_sampled_fuzz_points(victim):
    _assert_recover_grid("rmw_mpi3", victim)


@pytest.mark.parametrize("victim", range(NPROC))
def test_mpi3_gmr_rebuild_recovers_from_death_at_every_fuzz_point(victim):
    _assert_recover_grid("gmr_mpi3", victim)


@pytest.mark.parametrize("victim", range(NPROC))
def test_mpi3_nb_queue_recovers_from_death_at_sampled_fuzz_points(victim):
    _assert_recover_grid("nbq_mpi3", victim)


def test_recovery_replays_bit_identically():
    plan = FaultPlan(seed=SEED).kill(1, 5)
    a = run_schedule(RECOVER_SCENARIOS["ga"], NPROC, SEED, plan=plan)
    b = run_schedule(RECOVER_SCENARIOS["ga"], NPROC, SEED, plan=plan)
    assert a.ok, a.error
    assert a.digest == b.digest
    assert a.dead_ranks == [1]
    live = [r for r in a.results if r is not None]
    assert live and all(r == (NPROC - 1, 1) for r in live)


def test_recover_clears_translation_caches_and_retires_gmrs():
    """Satellite regression: after ``recover`` the old allocation's
    translations must be unreachable — the GMR table is emptied (its
    last-hit cache with it) and the strided/IOV datatype caches are
    flushed, so no stale displacement can resolve against freed slabs."""
    from repro.armci import Armci
    from repro.armci.iov import iov_datatype_cache_len
    from repro.armci.strided import strided_datatype_cache_len
    from repro.ga import GlobalArray
    from repro.recover import recover

    rt = Runtime(NPROC, watchdog_s=5.0)
    seen = {}

    def body(comm):
        armci = Armci.init(comm)
        ga = GlobalArray.create(armci, (6, 6), "f8")
        ga.acc([0, 0], [6, 6], np.ones((6, 6)))  # strided traffic warms caches
        ga.sync()
        if comm.rank == 2:
            with rt.cond:
                rt.mark_dead(comm.world_rank(2))
            raise RankKilledError("rank 2 dies")
        with rt.cond:
            rt.wait_for(lambda: rt.dead_ranks, what="death observed")
        old_table = armci.table
        seen["warm"] = strided_datatype_cache_len()
        new_armci, report = recover(armci)
        seen["strided"] = strided_datatype_cache_len()
        seen["iov"] = iov_datatype_cache_len()
        seen["gmrs"] = old_table.gmrs
        seen["hot"] = dict(old_table._hot)
        assert new_armci.nproc == NPROC - 1
        assert report.failed == (2,)
        assert all(o.action == "aborted" for o in report.gmrs)
        return "ok"

    rt.spmd(body)
    assert seen["warm"] > 0
    assert seen["strided"] == seen["iov"] == 0
    assert seen["gmrs"] == [] and seen["hot"] == {}


def test_ga_checkpoint_restore_round_trip():
    from repro.armci import Armci
    from repro.ga import GlobalArray

    def body(comm):
        armci = Armci.init(comm)
        ga = GlobalArray.create(armci, (6, 5), "f8")
        blk = ga.distribution()
        if blk.size:
            view = ga.access()
            view[...] = comm.rank + 1.0
            ga.release()
        ga.sync()
        before = ga.get([0, 0], [6, 5])
        ckpt = ga.checkpoint()
        assert np.array_equal(ckpt.data, before)
        ga.acc([0, 0], [6, 5], np.ones((6, 5)))  # diverge after the snapshot
        ga.sync()
        ga2 = GlobalArray.restore(armci, ckpt, name="restored")
        assert np.array_equal(ga2.get([0, 0], [6, 5]), before)
        armci.finalize()
        return "ok"

    assert Runtime(NPROC, watchdog_s=2.0).spmd(body) == ["ok"] * NPROC


def test_mutex_reclaim_sweeps_dead_holders():
    """Belt-and-braces ownership reclamation: a holder entry that escaped
    the death hook (the crash raced it) is swept by ``reclaim``."""
    rt = Runtime(NPROC, watchdog_s=2.0)
    swept = {}

    def body(comm):
        ms = MutexSet.create(comm, 1)
        comm.barrier()
        if comm.rank == 1:
            with rt.cond:
                rt.mark_dead(comm.world_rank(1))
                ms._holders[(0, 0)] = 1  # plant: dead rank still on record
            raise RankKilledError("holder dies")
        if comm.rank == 0:
            # Only rank 0 waits for the plant: reclaim() deletes the
            # entry, so a second waiter could miss it and hang.
            while True:
                try:
                    with rt.cond:
                        rt.wait_for(
                            lambda: ms._holders.get((0, 0)) == 1,
                            what="stale holder",
                        )
                    break
                except TargetFailedError:
                    comm.failure_ack()  # the death is expected; keep waiting
            swept["got"] = ms.reclaim()
            swept["again"] = ms.reclaim()  # idempotent
        return "ok"

    rt.spmd(body)
    assert swept["got"] == [(0, 0, 1)]
    assert swept["again"] == []


# -- transient stalls / retry-with-backoff -----------------------------------------


def test_transient_stall_round_trips_and_describes():
    plan = FaultPlan(seed=1).stall(0, 2, steps=9, transient=True)
    again = FaultPlan.from_json(plan.to_json())
    assert again == plan and again.stalls[0].transient
    assert "(transient)" in plan.describe()
    # legacy corpus entries without the field default to permanent stalls
    legacy = FaultPlan.from_dict({"seed": 1, "stall": [{"rank": 0, "point": 2}]})
    assert legacy.stalls[0].transient is False


def test_transient_stall_clears_within_the_retry_budget():
    """7 stall steps fit the default budget (1+2+4+8): the run completes,
    perturbed but bit-identically replayable."""
    plan = FaultPlan(seed=SEED).stall(1, 3, steps=7, transient=True)
    a = run_schedule(SCENARIOS["rmw"], NPROC, SEED, plan=plan)
    b = run_schedule(SCENARIOS["rmw"], NPROC, SEED, plan=plan)
    assert a.ok and not a.violations
    assert a.fault_events >= 2  # the retry attempts plus retry_cleared
    assert a.digest == b.digest


def test_transient_stall_retry_events_are_logged():
    inj = FaultInjector(FaultPlan(seed=0).stall(0, 2, steps=3, transient=True))
    rt = Runtime(2, seed=0)
    DeterministicSchedule(0).begin_run(rt)
    rt.faults = inj

    def body(comm):
        for _ in range(4):
            comm.barrier()
        return comm.rank

    assert rt.spmd(body) == [0, 1]
    tags = [e[0] for e in inj.events]
    assert tags.count("retry") == 2  # bursts of 1 then 2 absorb 3 steps
    assert tags[-1] == "retry_cleared"


def test_transient_stall_exhausts_into_a_typed_error():
    """A stall outlasting the whole backoff budget surfaces as
    :class:`RetriesExhausted` — typed (graceful), and nothing dies."""
    plan = FaultPlan(seed=SEED).stall(1, 3, steps=100, transient=True)
    report = run_schedule(SCENARIOS["rmw"], NPROC, SEED, plan=plan)
    assert not report.ok
    assert (report.error or "").startswith("RetriesExhausted")
    assert graceful(report)
    assert report.dead_ranks == []


def test_transient_retry_budget_is_configurable(monkeypatch):
    monkeypatch.delenv("REPRO_FAULT_RETRIES", raising=False)
    assert FaultInjector(FaultPlan(seed=0)).retries == 3
    monkeypatch.setenv("REPRO_FAULT_RETRIES", "1")
    assert FaultInjector(FaultPlan(seed=0)).retries == 1
    assert FaultInjector(FaultPlan(seed=0), retries=0).retries == 0


def test_gmr_table_consistency_check_catches_a_planted_tear():
    """``GmrTable.check_consistent`` (used after every free in the
    gmr_free scenario) actually detects corruption."""
    from repro.armci import Armci

    def body(comm):
        armci = Armci.init(comm)
        ptrs = armci.malloc(64)
        armci.table.check_consistent()  # clean table passes
        if comm.rank == 0:
            entry = armci.table._all[0]
            entry.freed = True  # plant: a freed GMR still registered
            with pytest.raises(AssertionError):
                armci.table.check_consistent()
            entry.freed = False
        comm.barrier()
        armci.free(ptrs[armci.my_id])
        armci.finalize()

    Runtime(2, watchdog_s=1.0).spmd(body)
