"""Fault-injection tests: the §V-D protocols under seeded failures.

Three layers:

* **plan/injector mechanics** — serialization round-trips, the builder
  API, single-use enforcement, the ambient ``pytest --faults`` hook;
* **the kill matrix** — rank death injected at *every* fuzz point of the
  mutex-handoff and GMR-free-with-NULL-slices scenarios (and a sampled
  stride of the RMW scenario) must end gracefully: either the run
  completes or it fails with a typed
  :class:`~repro.mpi.errors.TargetFailedError`, with zero sanitizer
  violations and bit-identical replay from ``(seed, plan)``;
* **graceful degradation** — deterministic mutex-holder-death recovery
  (the next waiter receives :class:`MutexHolderFailed` and owns the
  repaired mutex) and the watchdog / per-op-timeout independence fixed
  in this change: a timeout retry in flight must not trip the deadlock
  watchdog, and both knobs configure independently via constructor or
  ``REPRO_*`` environment variables.
"""

from __future__ import annotations

import functools

import numpy as np
import pytest

from repro.faults import (
    Corrupt,
    Delay,
    FaultInjector,
    FaultPlan,
    Kill,
    MutexHolderFailed,
    SCENARIOS,
    Stall,
)
from repro.faults.cli import graceful, main as faults_main
from repro.armci.mutexes import MutexSet
from repro.mpi.errors import OpTimeoutError, RankKilledError
from repro.mpi.progress import DeterministicSchedule
from repro.mpi.runtime import Runtime
from repro.sanitizer.fuzz import run_schedule

NPROC = 3
SEED = 2012


# -- plan mechanics ----------------------------------------------------------------


def test_plan_builder_is_immutable_and_composable():
    base = FaultPlan(seed=7)
    grown = base.kill(1, 5).stall(0, 2, steps=3).corrupt(4).drop(9).delay(
        jitter_frac=0.1, latency_factor=2.0
    )
    assert base.empty and not grown.empty
    assert grown.kills == (Kill(rank=1, point=5),)
    assert grown.stalls == (Stall(rank=0, point=2, steps=3),)
    assert {c.mode for c in grown.corruptions} == {"corrupt", "drop"}
    assert grown.delays[0].latency_factor == 2.0


def test_plan_round_trips_through_json():
    plan = (
        FaultPlan(seed=3)
        .kill(2, 11, kind="rma:put")
        .stall(1, 4, steps=2)
        .corrupt(6)
        .drop(8)
        .delay(jitter_frac=0.25, bw_factor=0.5)
    )
    again = FaultPlan.from_json(plan.to_json())
    assert again == plan
    assert again.key() == plan.key()
    assert "kill" in plan.describe()


def test_plan_validates_specs():
    with pytest.raises(ValueError):
        Corrupt(op=0, mode="mangle")
    with pytest.raises(ValueError):
        Delay(jitter_frac=-0.5)


def test_injector_is_single_use():
    inj = FaultInjector(FaultPlan(seed=0))
    rt1, rt2 = Runtime(1), Runtime(1)
    inj.begin_run(rt1)
    inj.begin_run(rt1)  # idempotent for the same runtime
    with pytest.raises(RuntimeError):
        inj.begin_run(rt2)


@pytest.mark.faults
def test_ambient_marker_attaches_a_benign_injector():
    rt = Runtime(2)
    assert isinstance(rt.faults, FaultInjector)
    assert rt.faults.plan.empty


# -- the kill matrix ----------------------------------------------------------------


@functools.lru_cache(maxsize=None)
def _fuzz_points(name: str) -> dict[int, int]:
    """Fuzz points per rank in scenario ``name`` under the pinned seed.

    An empty plan changes nothing but counts every point, so the matrix
    below provably covers each one.
    """
    inj = FaultInjector(FaultPlan(seed=SEED))
    rt = Runtime(NPROC, seed=SEED)
    DeterministicSchedule(SEED).begin_run(rt)
    rt.faults = inj
    rt.spmd(SCENARIOS[name])
    counts = inj.point_counts()
    assert counts and all(counts.get(r, 0) > 0 for r in range(NPROC))
    return counts


def _assert_kill_grid(name: str, victim: int, stride: int = 1) -> None:
    fn = SCENARIOS[name]
    failures = []
    for point in range(0, _fuzz_points(name)[victim], stride):
        plan = FaultPlan(seed=SEED).kill(victim, point)
        report = run_schedule(fn, NPROC, SEED, sanitize=True, plan=plan)
        if not graceful(report):
            failures.append((point, report.error))
        elif report.violations:
            failures.append((point, report.violations))
        elif not report.ok and victim not in report.dead_ranks:
            failures.append((point, f"failed without the kill firing: {report.error}"))
    assert not failures, f"{name}: non-graceful kills at {failures}"


@pytest.mark.parametrize("victim", range(NPROC))
def test_mutex_handoff_survives_death_at_every_fuzz_point(victim):
    _assert_kill_grid("mutex", victim)


@pytest.mark.parametrize("victim", range(NPROC))
def test_gmr_free_with_null_slices_survives_death_at_every_fuzz_point(victim):
    _assert_kill_grid("gmr_free", victim)


@pytest.mark.parametrize("victim", range(NPROC))
def test_rmw_survives_death_at_sampled_fuzz_points(victim):
    _assert_kill_grid("rmw", victim, stride=5)


def test_failing_plan_replays_bit_identically():
    plan = FaultPlan(seed=SEED).kill(1, 3)
    a = run_schedule(SCENARIOS["mutex"], NPROC, SEED, plan=plan)
    b = run_schedule(SCENARIOS["mutex"], NPROC, SEED, plan=plan)
    assert a.digest == b.digest
    assert a.error == b.error
    assert a.fault_events == b.fault_events > 0
    assert a.dead_ranks == [1]
    # the plan is part of the digest: the same seed without it diverges
    assert run_schedule(SCENARIOS["mutex"], NPROC, SEED).digest != a.digest


def test_stall_and_jitter_perturb_but_complete():
    plan = FaultPlan(seed=SEED).stall(0, 2, steps=4).delay(jitter_frac=0.2)
    a = run_schedule(SCENARIOS["rmw"], NPROC, SEED, plan=plan)
    b = run_schedule(SCENARIOS["rmw"], NPROC, SEED, plan=plan)
    assert a.ok and not a.violations
    assert a.fault_events >= 1
    assert a.digest == b.digest


def test_corrupt_and_drop_are_silent_data_faults():
    for plan in (FaultPlan(seed=SEED).corrupt(2), FaultPlan(seed=SEED).drop(2)):
        report = run_schedule(SCENARIOS["gmr_free"], NPROC, SEED, plan=plan)
        # the protocol completes; only payload bits were harmed
        assert report.ok, report.error
        assert report.fault_events == 1


def test_cli_kill_run_is_graceful(capsys):
    rc = faults_main(
        ["scenario:mutex", "--nproc", "3", "--seed", str(SEED),
         "--schedules", "2", "--kill", "1@3"]
    )
    out = capsys.readouterr().out
    assert rc == 0
    assert "kill" in out


# -- graceful degradation ----------------------------------------------------------


def test_mutex_holder_death_forwards_structured_failure():
    """The §V-D recovery path, deterministically staged in wall mode.

    Rank 1 takes the mutex, waits until rank 0 is visibly enqueued in
    the Latham byte vector, then dies mid-critical-section.  The death
    hook must repair the vector and forward the handoff, so rank 0's
    pending receive completes with a structured
    :class:`MutexHolderFailed` — after which rank 0 *owns* the repaired
    mutex and can unlock it.
    """
    observed = {}
    rt = Runtime(NPROC, watchdog_s=1.0)

    def body(comm):
        ms = MutexSet.create(comm, 1)
        if comm.rank == 1:
            ms.lock(0, 0)
            vec = ms._win.exposed_buffer(0)
            with rt.cond:
                rt.wait_for(lambda: vec[0] == 1, what="waiter 0 enqueued")
                rt.mark_dead(comm.world_rank(1))
            raise RankKilledError("rank 1 dies holding mutex 0")
        if comm.rank == 0:
            with rt.cond:
                rt.wait_for(
                    lambda: ms._holders.get((0, 0)) == 1,
                    what="rank 1 holds the mutex",
                )
            try:
                ms.lock(0, 0)
            except MutexHolderFailed as exc:
                observed.update(
                    mutex=exc.mutex, host=exc.host, dead=exc.dead_rank
                )
            # we own the repaired mutex either way and must release it
            ms.unlock(0, 0)
        return "done"
        # no destroy: it is collective and rank 1 is dead

    results = rt.spmd(body)
    assert observed == {"mutex": 0, "host": 0, "dead": 1}
    assert results[0] == results[2] == "done"
    assert results[1] is None  # the killed rank produced no result
    assert rt.dead_ranks == {1}
    assert rt.death_hook_errors == []


def test_watchdog_and_op_timeout_configure_independently(monkeypatch):
    monkeypatch.setenv("REPRO_WATCHDOG_S", "3.25")
    monkeypatch.setenv("REPRO_OP_TIMEOUT_S", "0.125")
    monkeypatch.setenv("REPRO_OP_RETRIES", "5")
    rt = Runtime(1)
    assert (rt.watchdog_s, rt.op_timeout_s, rt.op_retries) == (3.25, 0.125, 5)
    # constructor arguments beat the environment, knob by knob
    rt = Runtime(1, watchdog_s=0.7, op_retries=1)
    assert (rt.watchdog_s, rt.op_timeout_s, rt.op_retries) == (0.7, 0.125, 1)
    # with nothing configured, per-op timeouts stay disabled
    monkeypatch.delenv("REPRO_OP_TIMEOUT_S")
    monkeypatch.delenv("REPRO_WATCHDOG_S")
    assert Runtime(1).op_timeout_s is None
    assert Runtime(1).watchdog_s == 2.0


def test_watchdog_stays_quiet_while_a_timeout_retry_is_in_flight():
    """Regression for the ``watchdog_s`` / per-op-timeout entanglement.

    Rank 0 parks on a mutex it holds while rank 1's acquisition exhausts
    its per-op timeout budget (timeouts much shorter than the watchdog).
    The shortened condition waits must not let the watchdog declare a
    global deadlock: rank 1 gets a clean :class:`OpTimeoutError`, its
    queue entry is withdrawn, and the run finishes — destroy included.
    """
    rt = Runtime(2, watchdog_s=0.8, op_timeout_s=0.05, op_retries=2)
    outcome = {}

    def body(comm):
        ms = MutexSet.create(comm, 1)
        with rt.cond:
            gave_up = rt.shared.setdefault("gave_up", [])
        if comm.rank == 0:
            ms.lock(0, 0)
            with rt.cond:
                rt.wait_for(lambda: gave_up, what="waiter gave up")
            ms.unlock(0, 0)
        else:
            with rt.cond:
                rt.wait_for(
                    lambda: ms._holders.get((0, 0)) == 0,
                    what="rank 0 holds the mutex",
                )
            try:
                ms.lock(0, 0)
            except OpTimeoutError:
                outcome["timed_out"] = True
            with rt.cond:
                gave_up.append(True)
                rt.notify_progress()
        comm.barrier()
        ms.destroy()
        return "done"

    results = rt.spmd(body)
    assert outcome == {"timed_out": True}
    assert results == ["done", "done"]


def test_gmr_table_consistency_check_catches_a_planted_tear():
    """``GmrTable.check_consistent`` (used after every free in the
    gmr_free scenario) actually detects corruption."""
    from repro.armci import Armci

    def body(comm):
        armci = Armci.init(comm)
        ptrs = armci.malloc(64)
        armci.table.check_consistent()  # clean table passes
        if comm.rank == 0:
            entry = armci.table._all[0]
            entry.freed = True  # plant: a freed GMR still registered
            with pytest.raises(AssertionError):
                armci.table.check_consistent()
            entry.freed = False
        comm.barrier()
        armci.free(ptrs[armci.my_id])
        armci.finalize()

    Runtime(2, watchdog_s=1.0).spmd(body)
