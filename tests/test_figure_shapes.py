"""Shape tests: every qualitative relation §VII reports must hold.

These tests pin the figure shapes DESIGN.md commits to, so recalibrating
any platform model cannot silently break a reproduced result.  They use
coarse sweeps for speed; the benches print the full-resolution series.
"""

from __future__ import annotations

import pytest

from repro.bench import fig3_series, fig4_series, fig5_series
from repro.nwchem.model import ccsd_time, triples_time
from repro.simtime import PLATFORMS


def _by_label(series):
    return {s.label: s for s in series}


# ---------------------------------------------------------------------------
# Figure 3: contiguous bandwidth
# ---------------------------------------------------------------------------


@pytest.fixture(scope="module")
def fig3():
    return {
        key: _by_label(fig3_series(PLATFORMS[key], exponents=(0, 25), step=5))
        for key in PLATFORMS
    }


def test_fig3_bgp_mpi_close_below_native(fig3):
    s = fig3["bgp"]
    for kind in ("Get", "Put"):
        nat = s[f"{kind} (Nat.)"].y[-1]
        mpi = s[f"{kind} (MPI)"].y[-1]
        assert mpi < nat, "MPI should be below native on BG/P"
        assert mpi > 0.8 * nat, "...but comparable (within ~20%)"


def test_fig3_ib_acc_gap_exceeds_1_5_gbps(fig3):
    s = fig3["ib"]
    gap = s["Acc (Nat.)"].y[-1] - s["Acc (MPI)"].y[-1]
    assert gap > 1.5, f"§VII-A: IB accumulate gap must exceed 1.5 GB/s, got {gap:.2f}"


def test_fig3_ib_get_put_comparable(fig3):
    s = fig3["ib"]
    for kind in ("Get", "Put"):
        assert s[f"{kind} (MPI)"].y[-1] > 0.85 * s[f"{kind} (Nat.)"].y[-1]


def test_fig3_xt_comparable_small_half_large(fig3):
    s = fig3["xt5"]
    sizes = s["Get (MPI)"].x
    for i, n in enumerate(sizes):
        nat, mpi = s["Get (Nat.)"].y[i], s["Get (MPI)"].y[i]
        if n == 32 * 1024:
            # byte costs dominate here: MPI within ~20% (comparable)
            assert mpi > 0.8 * nat, f"comparable at 32 KiB (n={n})"
        if n >= 1 << 20:
            assert mpi < 0.62 * nat, f"~half native beyond 32 KiB (n={n})"


def test_fig3_xe_mpi_twice_native_large(fig3):
    s = fig3["xe6"]
    for kind in ("Get", "Put"):
        ratio = s[f"{kind} (MPI)"].y[-1] / s[f"{kind} (Nat.)"].y[-1]
        assert 1.7 <= ratio <= 2.4, f"XE large {kind}: MPI ~2x native, got {ratio:.2f}"


def test_fig3_xe_acc_25pct_better(fig3):
    s = fig3["xe6"]
    ratio = s["Acc (MPI)"].y[-1] / s["Acc (Nat.)"].y[-1]
    assert 1.1 <= ratio <= 1.45, f"XE acc: MPI ~25% above native, got {ratio:.2f}"


def test_fig3_native_bandwidth_monotone_in_size(fig3):
    # only native paths: the XT MPI path legitimately LOSES achieved
    # bandwidth past its 32 KiB threshold (that is the Fig. 3 result)
    for key, s in fig3.items():
        for label, series in s.items():
            if "Nat." not in label:
                continue
            ys = series.y
            assert all(b >= a for a, b in zip(ys, ys[1:])), (
                f"{key}/{label}: native bandwidth must not decrease with size"
            )


# ---------------------------------------------------------------------------
# Figure 4: strided bandwidth by method
# ---------------------------------------------------------------------------


@pytest.fixture(scope="module")
def fig4_small():
    """Get bandwidth at 16 B segments, key platforms, sparse x."""
    return {
        key: _by_label(fig4_series(PLATFORMS[key], "get", 16, exponents=(0, 10)))
        for key in ("bgp", "ib")
    }


@pytest.fixture(scope="module")
def fig4_large():
    """Get bandwidth at 1 KiB segments."""
    return {
        key: _by_label(fig4_series(PLATFORMS[key], "get", 1024, exponents=(0, 10)))
        for key in ("bgp", "ib", "xt5", "xe6")
    }


def test_fig4_bgp_direct_best_small_segments(fig4_small):
    s = fig4_small["bgp"]
    assert s["direct"].y[-1] > s["iov-batched"].y[-1]
    assert s["direct"].y[-1] > s["iov-consrv"].y[-1]


def test_fig4_bgp_batched_wins_at_1k_segments(fig4_large):
    """Slow BG/P cores make packing expensive: batched overtakes direct."""
    s = fig4_large["bgp"]
    assert s["iov-batched"].y[-1] > s["direct"].y[-1]
    # and comes close to (but does not beat) native
    assert 0.9 * s["Native"].y[-1] <= s["iov-batched"].y[-1] <= s["Native"].y[-1]


def test_fig4_ib_direct_best_small(fig4_small):
    s = fig4_small["ib"]
    assert s["direct"].y[-1] > s["iov-batched"].y[-1]


def test_fig4_ib_batched_better_at_1k_then_collapses(fig4_large):
    s = fig4_large["ib"]
    # moderate segment counts: batched above direct (offers better bw)
    idx16 = s["direct"].x.index(16)
    assert s["iov-batched"].y[idx16] > s["direct"].y[idx16]
    # large counts: the MVAPICH queue issue collapses batched (§VII-A)
    assert s["iov-batched"].y[-1] < 0.25 * s["direct"].y[-1]
    peak = max(s["iov-batched"].y)
    assert s["iov-batched"].y[-1] < 0.2 * peak, "suffers severely at large N"


def test_fig4_xt_datatypes_beat_batched(fig4_large):
    s = fig4_large["xt5"]
    idx = s["direct"].x.index(32)
    assert s["direct"].y[idx] > s["iov-batched"].y[idx]
    assert s["iov-direct"].y[idx] > s["iov-batched"].y[idx]


def test_fig4_xt_falls_to_half_native_many_segments(fig4_large):
    s = fig4_large["xt5"]
    ratio = s["direct"].y[-1] / s["Native"].y[-1]
    assert 0.3 <= ratio <= 0.6, f"§VII-A: ~half native at many segments, got {ratio:.2f}"


def test_fig4_xe_mpi_above_native(fig4_large):
    s = fig4_large["xe6"]
    assert s["direct"].y[-1] > 1.5 * s["Native"].y[-1], (
        "§VII-A: XE strided put/get significantly above native"
    )


def test_fig4_xe_acc_matches_native():
    s = _by_label(fig4_series(PLATFORMS["xe6"], "acc", 1024, exponents=(8, 10)))
    ratio = s["direct"].y[-1] / s["Native"].y[-1]
    assert 0.8 <= ratio <= 1.3, f"XE acc should match native, got {ratio:.2f}"


def test_fig4_conservative_is_flat_and_slowest_at_scale(fig4_large):
    for key in ("ib", "xt5"):
        s = fig4_large[key]
        ys = s["iov-consrv"].y
        # one epoch per segment: bandwidth independent of segment count
        assert max(ys) - min(ys) < 0.05 * max(ys)
        assert ys[-1] <= min(s["direct"].y[-1], s["Native"].y[-1])


def test_fig4_iov_direct_equals_direct(fig4_large):
    """Both are a single datatype op in this substrate (documented)."""
    s = fig4_large["ib"]
    assert s["iov-direct"].y == pytest.approx(s["direct"].y)


# ---------------------------------------------------------------------------
# Figure 5: registration interoperability
# ---------------------------------------------------------------------------


@pytest.fixture(scope="module")
def fig5():
    return _by_label(fig5_series(PLATFORMS["ib"]))


def test_fig5_armci_alloc_fastest(fig5):
    best = fig5["ARMCI-IB, ARMCI Alloc"].y
    for label, s in fig5.items():
        assert all(y <= b + 1e-12 for y, b in zip(s.y, best))


def test_fig5_nonpinned_path_gap(fig5):
    """ARMCI on an MPI buffer drops off the pinned path: visible gap."""
    fast = fig5["ARMCI-IB, ARMCI Alloc"].y[-1]
    slow = fig5["ARMCI-IB, MPI Touch"].y[-1]
    assert slow < 0.8 * fast


def test_fig5_on_demand_registration_penalty(fig5):
    """MPI on an untouched buffer pays registration above 8 KiB (2 pages)."""
    s = fig5["MPI, ARMCI Alloc"]
    touched = fig5["MPI, MPI Touch"]
    i8k = s.x.index(8192)
    # at and below the threshold: close to the touched curve (bounce copy)
    assert s.y[i8k] > 0.55 * touched.y[i8k]
    # just above: a sharp drop (the Fig. 5 cliff)
    assert s.y[i8k + 1] < 0.5 * s.y[i8k]
    # partially recovering at very large transfers as pinning amortises,
    # but still visibly below the touched curve (as in Fig. 5)
    assert 0.6 * touched.y[-1] < s.y[-1] < 0.95 * touched.y[-1]


# ---------------------------------------------------------------------------
# Figure 6: NWChem CCSD / (T)
# ---------------------------------------------------------------------------


def test_fig6_ib_ccsd_gap_about_2x_shrinking():
    p = PLATFORMS["ib"]
    r192 = ccsd_time(p, "mpi", 192) / ccsd_time(p, "native", 192)
    r384 = ccsd_time(p, "mpi", 384) / ccsd_time(p, "native", 384)
    assert 1.6 <= r192 <= 2.4, f"IB CCSD gap ~2x at 192 cores, got {r192:.2f}"
    assert r384 <= r192, "gap must shrink as processor count increases"


def test_fig6_ib_triples_gap():
    p = PLATFORMS["ib"]
    r = triples_time(p, "mpi", 192) / triples_time(p, "native", 192)
    assert 1.4 <= r <= 2.4, f"IB (T) gap, got {r:.2f}"


def test_fig6_bgp_comparable():
    p = PLATFORMS["bgp"]
    for cores in (1024, 4096):
        r = ccsd_time(p, "mpi", cores) / ccsd_time(p, "native", cores)
        assert 0.95 <= r <= 1.25, f"BG/P CCSD comparable, got {r:.2f} at {cores}"


def test_fig6_xt_15_to_20_pct_slower():
    p = PLATFORMS["xt5"]
    for cores in (2048, 8192):
        r = ccsd_time(p, "mpi", cores) / ccsd_time(p, "native", cores)
        assert 1.10 <= r <= 1.30, f"XT CCSD 15-20% slower, got {r:.2f} at {cores}"


def test_fig6_xe_mpi_30pct_faster():
    p = PLATFORMS["xe6"]
    r = ccsd_time(p, "mpi", 1488) / ccsd_time(p, "native", 1488)
    assert 0.6 <= r <= 0.85, f"XE CCSD: MPI ~30% faster, got {r:.2f}"


def test_fig6_xe_native_ccsd_worsens_at_scale():
    p = PLATFORMS["xe6"]
    assert ccsd_time(p, "native", 5952) > ccsd_time(p, "native", 4464), (
        "§VII-D: native CCSD worsens between 4,464 and 5,952 cores"
    )
    assert ccsd_time(p, "mpi", 5952) < ccsd_time(p, "mpi", 4464), (
        "while ARMCI-MPI keeps improving"
    )


def test_fig6_xe_native_triples_flattens_mpi_scales():
    p = PLATFORMS["xe6"]
    nat_drop = triples_time(p, "native", 5952) / triples_time(p, "native", 2976)
    mpi_drop = triples_time(p, "mpi", 5952) / triples_time(p, "mpi", 2976)
    assert nat_drop > 0.9, f"native (T) must flatten (got {nat_drop:.2f} of 2976-time)"
    assert mpi_drop < 0.7, f"MPI (T) must keep scaling (got {mpi_drop:.2f})"


def test_fig6_all_times_positive_and_finite():
    for p in PLATFORMS.values():
        for flavor in ("native", "mpi"):
            t = ccsd_time(p, flavor, 1024)
            assert 0 < t < 1e6


def test_fig6_invalid_cores_raise():
    with pytest.raises(ValueError):
        ccsd_time(PLATFORMS["ib"], "mpi", 0)
    with pytest.raises(ValueError):
        from repro.nwchem.model import stack_for

        stack_for(PLATFORMS["ib"], "fastest")
