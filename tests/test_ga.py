"""Tests for the Global Arrays layer over both ARMCI runtimes."""

from __future__ import annotations

import numpy as np
import pytest

from repro.armci import Armci
from repro.armci_ds import DataServerArmci
from repro.armci_native import NativeArmci
from repro.ga import (
    GlobalArray,
    Patch,
    SharedCounter,
    TaskPool,
    add,
    copy,
    dgemm,
    dot,
    fill,
    norm2,
    scale,
    sum_all,
    transpose,
    zero,
)
from repro.mpi.errors import ArgumentError

from conftest import spmd


def _rt(comm, flavor):
    if flavor == "mpi":
        return Armci.init(comm)
    if flavor == "ds":
        return DataServerArmci.init(comm)
    return NativeArmci.init(comm)


@pytest.fixture(params=["mpi", "native", "ds"])
def flavor(request):
    return request.param


def test_create_and_distribution(flavor):
    def main(comm):
        rt = _rt(comm, flavor)
        ga = GlobalArray.create(rt, (8, 8), "f8", name="A")
        blocks = [ga.distribution(r) for r in range(rt.nproc)]
        # blocks tile the array exactly
        total = sum(b.size for b in blocks)
        assert total == 64
        ga.destroy()

    spmd(4, main)


def test_put_get_full_array(flavor):
    def main(comm):
        rt = _rt(comm, flavor)
        ga = GlobalArray.create(rt, (8, 8), "f8")
        ref = np.arange(64.0).reshape(8, 8)
        if rt.my_id == 0:
            ga.put((0, 0), (8, 8), ref)
        ga.sync()
        got = ga.get((0, 0), (8, 8))
        np.testing.assert_array_equal(got, ref)
        ga.destroy()

    spmd(4, main)


def test_patch_put_get_spanning_owners(flavor):
    """Figure 2: a patch spanning 4 owners decomposes into 4 strided ops."""

    def main(comm):
        rt = _rt(comm, flavor)
        ga = GlobalArray.create(rt, (8, 8), "f8")
        zero(ga)
        if rt.my_id == 3:
            patch = np.arange(16.0).reshape(4, 4)
            ga.put((2, 2), (6, 6), patch)
        ga.sync()
        got = ga.get((2, 2), (6, 6))
        np.testing.assert_array_equal(got, np.arange(16.0).reshape(4, 4))
        # the rest stayed zero
        full = ga.get((0, 0), (8, 8))
        assert full.sum() == np.arange(16.0).sum()
        ga.destroy()

    spmd(4, main)


def test_fig2_decomposition_op_counts():
    """The spanning patch issues exactly one strided op per owner (ARMCI-MPI)."""

    def main(comm):
        rt = Armci.init(comm)
        ga = GlobalArray.create(rt, (8, 8), "f8")
        ga.sync()
        before = rt.stats.puts
        if rt.my_id == 0:
            ga.put((2, 2), (6, 6), np.ones((4, 4)))
            assert rt.stats.puts - before == 4  # 2x2 process grid -> 4 PutS
        ga.sync()
        ga.destroy()

    spmd(4, main)


def test_acc_patch(flavor):
    def main(comm):
        rt = _rt(comm, flavor)
        ga = GlobalArray.create(rt, (6, 6), "f8")
        zero(ga)
        ones = np.ones((3, 3))
        ga.acc((1, 1), (4, 4), ones, alpha=0.5)
        ga.sync()
        got = ga.get((0, 0), (6, 6))
        assert got[1:4, 1:4].sum() == pytest.approx(0.5 * 9 * rt.nproc)
        assert got.sum() == pytest.approx(0.5 * 9 * rt.nproc)
        ga.destroy()

    spmd(4, main)


def test_1d_array(flavor):
    def main(comm):
        rt = _rt(comm, flavor)
        ga = GlobalArray.create(rt, (17,), "i8")
        if rt.my_id == 1:
            ga.put((3,), (12,), np.arange(3, 12, dtype="i8"))
        ga.sync()
        got = ga.get((0,), (17,))
        assert got[3:12].tolist() == list(range(3, 12))
        ga.destroy()

    spmd(3, main)


def test_3d_array(flavor):
    def main(comm):
        rt = _rt(comm, flavor)
        ga = GlobalArray.create(rt, (4, 4, 4), "f8")
        ref = np.arange(64.0).reshape(4, 4, 4)
        if rt.my_id == 0:
            ga.put((0, 0, 0), (4, 4, 4), ref)
        ga.sync()
        got = ga.get((1, 1, 1), (3, 3, 3))
        np.testing.assert_array_equal(got, ref[1:3, 1:3, 1:3])
        ga.destroy()

    spmd(4, main)


def test_access_release(flavor):
    def main(comm):
        rt = _rt(comm, flavor)
        ga = GlobalArray.create(rt, (6, 6), "f8")
        block = ga.distribution()
        if not block.empty:
            view = ga.access()
            view[...] = float(rt.my_id)
            ga.release()
        ga.sync()
        full = ga.get((0, 0), (6, 6))
        for r in range(rt.nproc):
            b = ga.distribution(r)
            if not b.empty:
                sub = full[b.lo[0] : b.hi[0], b.lo[1] : b.hi[1]]
                assert np.all(sub == float(r))
        ga.destroy()

    spmd(4, main)


def test_release_without_access_raises(flavor):
    def main(comm):
        rt = _rt(comm, flavor)
        ga = GlobalArray.create(rt, (4, 4))
        with pytest.raises(ArgumentError):
            ga.release()
        ga.sync()
        ga.destroy()

    spmd(2, main)


def test_wrong_patch_shape_raises(flavor):
    def main(comm):
        rt = _rt(comm, flavor)
        ga = GlobalArray.create(rt, (4, 4))
        with pytest.raises(ArgumentError):
            ga.put((0, 0), (2, 2), np.ones((3, 3)))
        with pytest.raises(ArgumentError):
            ga.put((0, 0), (6, 6), np.ones((6, 6)))  # out of bounds
        ga.sync()
        ga.destroy()

    spmd(2, main)


def test_dtype_mismatch_raises(flavor):
    def main(comm):
        rt = _rt(comm, flavor)
        ga = GlobalArray.create(rt, (4,), "f8")
        with pytest.raises(ArgumentError):
            ga.put((0,), (4,), np.ones(4, dtype="f4"))
        ga.sync()
        ga.destroy()

    spmd(1, main)


# ---------------------------------------------------------------------------
# collectives
# ---------------------------------------------------------------------------


def test_fill_scale_sum(flavor):
    def main(comm):
        rt = _rt(comm, flavor)
        ga = GlobalArray.create(rt, (10, 10))
        fill(ga, 2.0)
        assert sum_all(ga) == pytest.approx(200.0)
        scale(ga, 0.5)
        assert sum_all(ga) == pytest.approx(100.0)
        ga.destroy()

    spmd(4, main)


def test_copy_add_dot_norm(flavor):
    def main(comm):
        rt = _rt(comm, flavor)
        a = GlobalArray.create(rt, (6, 6), name="a")
        b = GlobalArray.create(rt, (6, 6), name="b")
        c = GlobalArray.create(rt, (6, 6), name="c")
        fill(a, 1.0)
        fill(b, 2.0)
        copy(a, c)
        assert sum_all(c) == pytest.approx(36.0)
        add(2.0, a, 1.0, b, c)  # c = 2*1 + 2 = 4
        assert sum_all(c) == pytest.approx(144.0)
        assert dot(a, b) == pytest.approx(72.0)
        assert norm2(c) == pytest.approx(np.sqrt(36 * 16.0))
        for g in (c, b, a):
            g.destroy()

    spmd(4, main)


@pytest.mark.parametrize("k_tile", [0, 3])
def test_dgemm_matches_numpy(flavor, k_tile):
    def main(comm):
        rt = _rt(comm, flavor)
        rng = np.random.default_rng(5)
        m, k, n = 9, 7, 8
        A = rng.random((m, k))
        B = rng.random((k, n))
        C0 = rng.random((m, n))
        ga_a = GlobalArray.create(rt, (m, k), name="A")
        ga_b = GlobalArray.create(rt, (k, n), name="B")
        ga_c = GlobalArray.create(rt, (m, n), name="C")
        if rt.my_id == 0:
            ga_a.put((0, 0), (m, k), A)
            ga_b.put((0, 0), (k, n), B)
            ga_c.put((0, 0), (m, n), C0)
        ga_c.sync()
        dgemm(0.5, ga_a, ga_b, 2.0, ga_c, k_tile=k_tile)
        got = ga_c.get((0, 0), (m, n))
        np.testing.assert_allclose(got, 0.5 * A @ B + 2.0 * C0, rtol=1e-12)
        for g in (ga_c, ga_b, ga_a):
            g.destroy()

    spmd(4, main)


def test_transpose(flavor):
    def main(comm):
        rt = _rt(comm, flavor)
        A = np.arange(24.0).reshape(4, 6)
        ga_a = GlobalArray.create(rt, (4, 6), name="A")
        ga_b = GlobalArray.create(rt, (6, 4), name="B")
        if rt.my_id == 0:
            ga_a.put((0, 0), (4, 6), A)
        ga_a.sync()
        transpose(ga_a, ga_b)
        got = ga_b.get((0, 0), (6, 4))
        np.testing.assert_array_equal(got, A.T)
        ga_b.destroy()
        ga_a.destroy()

    spmd(4, main)


# ---------------------------------------------------------------------------
# counters / task pool
# ---------------------------------------------------------------------------


def test_shared_counter_unique_draws(flavor):
    def main(comm):
        rt = _rt(comm, flavor)
        ctr = SharedCounter(rt)
        got = [ctr.next() for _ in range(6)]
        allv = comm.allgather(got)
        flat = sorted(x for sub in allv for x in sub)
        assert flat == list(range(6 * rt.nproc))
        ctr.reset(100)
        assert ctr.read() == 100
        ctr.destroy()

    spmd(3, main)


def test_task_pool_covers_all_tasks_once(flavor):
    def main(comm):
        rt = _rt(comm, flavor)
        pool = TaskPool(rt, 37)
        mine = list(pool.tasks())
        allv = comm.allgather(mine)
        flat = sorted(x for sub in allv for x in sub)
        assert flat == list(range(37))
        pool.destroy()

    spmd(4, main)


def test_task_pool_empty(flavor):
    def main(comm):
        rt = _rt(comm, flavor)
        pool = TaskPool(rt, 0)
        assert list(pool.tasks()) == []
        pool.destroy()

    spmd(2, main)


def test_duplicate_array(flavor):
    def main(comm):
        rt = _rt(comm, flavor)
        a = GlobalArray.create(rt, (5, 5), name="a")
        fill(a, 3.0)
        b = a.duplicate()
        assert b.shape == a.shape
        copy(a, b)
        assert sum_all(b) == pytest.approx(75.0)
        b.destroy()
        a.destroy()

    spmd(3, main)
