"""Tests for GA element-list access (gather/scatter/read_inc) and patch
collectives — the IOV-backed corners of the GA surface."""

from __future__ import annotations

import numpy as np
import pytest

from repro.armci import Armci, ArmciConfig
from repro.armci_ds import DataServerArmci
from repro.armci_native import NativeArmci
from repro.ga import (
    GlobalArray,
    copy_patch,
    fill,
    fill_patch,
    gather,
    read_inc,
    scale_patch,
    scatter,
    scatter_acc,
    sum_all,
    zero,
)
from repro.mpi.errors import ArgumentError

from conftest import spmd


@pytest.fixture(params=["mpi", "native", "ds"])
def flavor(request):
    return request.param


def _rt(comm, flavor):
    if flavor == "mpi":
        return Armci.init(comm)
    if flavor == "ds":
        return DataServerArmci.init(comm)
    return NativeArmci.init(comm)


def test_gather_elements_across_owners(flavor):
    def main(comm):
        rt = _rt(comm, flavor)
        ga = GlobalArray.create(rt, (8, 8), "f8")
        ref = np.arange(64.0).reshape(8, 8)
        if rt.my_id == 0:
            ga.put((0, 0), (8, 8), ref)
        ga.sync()
        subs = [(0, 0), (7, 7), (3, 4), (4, 3), (0, 7)]
        got = gather(ga, subs)
        np.testing.assert_array_equal(got, [ref[i, j] for i, j in subs])
        ga.sync()
        ga.destroy()

    spmd(4, main)


def test_scatter_then_gather_roundtrip(flavor):
    def main(comm):
        rt = _rt(comm, flavor)
        ga = GlobalArray.create(rt, (6, 6), "f8")
        zero(ga)
        if rt.my_id == 1:
            subs = [(0, 0), (5, 5), (2, 3), (3, 2)]
            scatter(ga, subs, [1.0, 2.0, 3.0, 4.0])
        ga.sync()
        got = gather(ga, [(0, 0), (5, 5), (2, 3), (3, 2), (1, 1)])
        assert got.tolist() == [1.0, 2.0, 3.0, 4.0, 0.0]
        assert sum_all(ga) == pytest.approx(10.0)
        ga.destroy()

    spmd(4, main)


def test_scatter_acc_is_atomic(flavor):
    def main(comm):
        rt = _rt(comm, flavor)
        ga = GlobalArray.create(rt, (4, 4), "f8")
        zero(ga)
        subs = [(0, 0), (3, 3)]
        scatter_acc(ga, subs, [1.0, 2.0], alpha=0.5)
        ga.sync()
        got = gather(ga, subs)
        n = rt.nproc
        assert got.tolist() == [0.5 * n, 1.0 * n]
        ga.destroy()

    spmd(4, main)


def test_scatter_duplicate_subscripts_raise():
    def main(comm):
        rt = Armci.init(comm)
        ga = GlobalArray.create(rt, (4, 4), "f8")
        with pytest.raises(ArgumentError):
            scatter(ga, [(1, 1), (1, 1)], [1.0, 2.0])
        ga.sync()
        ga.destroy()

    spmd(2, main)


def test_scatter_length_mismatch_raises():
    def main(comm):
        rt = Armci.init(comm)
        ga = GlobalArray.create(rt, (4,), "f8")
        with pytest.raises(ArgumentError):
            scatter(ga, [(0,)], [1.0, 2.0])
        ga.sync()
        ga.destroy()

    spmd(1, main)


def test_gather_empty(flavor):
    def main(comm):
        rt = _rt(comm, flavor)
        ga = GlobalArray.create(rt, (4,), "f8")
        assert gather(ga, np.zeros((0, 1), dtype=np.int64)).size == 0
        ga.sync()
        ga.destroy()

    spmd(2, main)


def test_gather_uses_iov_machinery():
    """Element gathers on ARMCI-MPI must route through getv (IOV, §VI-A)."""

    def main(comm):
        rt = Armci.init(comm, ArmciConfig(iov_method="auto"))
        ga = GlobalArray.create(rt, (8,), "f8")
        fill(ga, 2.0)
        if rt.my_id == 0:
            gather(ga, [(0,), (1,), (6,), (7,)])
            assert rt.stats.iov_ops, "gather must go through IOV operations"
        ga.sync()
        ga.destroy()

    spmd(2, main)


def test_read_inc_unique_tickets(flavor):
    def main(comm):
        rt = _rt(comm, flavor)
        ga = GlobalArray.create(rt, (4,), "i8")
        zero(ga)
        got = [read_inc(ga, (2,)) for _ in range(5)]
        allv = comm.allgather(got)
        flat = sorted(x for sub in allv for x in sub)
        assert flat == list(range(5 * rt.nproc))
        ga.destroy()

    spmd(3, main)


def test_read_inc_requires_i8():
    def main(comm):
        rt = Armci.init(comm)
        ga = GlobalArray.create(rt, (4,), "f8")
        with pytest.raises(ArgumentError):
            read_inc(ga, (0,))
        ga.sync()
        ga.destroy()

    spmd(1, main)


# ---------------------------------------------------------------------------
# patch collectives
# ---------------------------------------------------------------------------


def test_fill_and_scale_patch(flavor):
    def main(comm):
        rt = _rt(comm, flavor)
        ga = GlobalArray.create(rt, (8, 8), "f8")
        zero(ga)
        fill_patch(ga, (2, 2), (6, 6), 3.0)
        assert sum_all(ga) == pytest.approx(3.0 * 16)
        scale_patch(ga, (2, 2), (4, 4), 2.0)
        got = ga.get((0, 0), (8, 8))
        assert got[2:4, 2:4].sum() == pytest.approx(6.0 * 4)
        assert got[4:6, 4:6].sum() == pytest.approx(3.0 * 4)
        ga.sync()
        ga.destroy()

    spmd(4, main)


def test_copy_patch_between_arrays(flavor):
    def main(comm):
        rt = _rt(comm, flavor)
        a = GlobalArray.create(rt, (6, 6), name="a")
        b = GlobalArray.create(rt, (6, 6), name="b")
        ref = np.arange(36.0).reshape(6, 6)
        if rt.my_id == 0:
            a.put((0, 0), (6, 6), ref)
        a.sync()
        zero(b)
        copy_patch(a, (1, 1), (4, 4), b, (2, 2), (5, 5))
        got = b.get((0, 0), (6, 6))
        np.testing.assert_array_equal(got[2:5, 2:5], ref[1:4, 1:4])
        assert got.sum() == ref[1:4, 1:4].sum()
        b.destroy()
        a.destroy()

    spmd(4, main)


def test_copy_patch_shape_mismatch_raises():
    def main(comm):
        rt = Armci.init(comm)
        a = GlobalArray.create(rt, (4, 4), name="a")
        b = GlobalArray.create(rt, (4, 4), name="b")
        with pytest.raises(ArgumentError):
            copy_patch(a, (0, 0), (2, 2), b, (0, 0), (3, 3))
        a.sync()
        b.destroy()
        a.destroy()

    spmd(2, main)


def test_copy_patch_within_same_array(flavor):
    def main(comm):
        rt = _rt(comm, flavor)
        ga = GlobalArray.create(rt, (8, 4), "f8")
        zero(ga)
        fill_patch(ga, (0, 0), (2, 4), 7.0)
        copy_patch(ga, (0, 0), (2, 4), ga, (6, 0), (8, 4))
        got = ga.get((0, 0), (8, 4))
        assert got[6:8].sum() == pytest.approx(7.0 * 8)
        assert got[2:6].sum() == 0.0
        ga.sync()
        ga.destroy()

    spmd(4, main)
