"""Tests for ghost-cell (halo) support: GA_Create_ghosts / Update_ghosts."""

from __future__ import annotations

import numpy as np
import pytest

from repro.armci import Armci
from repro.armci_native import NativeArmci
from repro.ga.ghosts import GhostArray, jacobi_sweep
from repro.mpi.errors import ArgumentError

from conftest import spmd


@pytest.fixture(params=["mpi", "native"])
def flavor(request):
    return request.param


def _rt(comm, flavor):
    return Armci.init(comm) if flavor == "mpi" else NativeArmci.init(comm)


def test_halo_reflects_neighbours_periodic(flavor):
    def main(comm):
        rt = _rt(comm, flavor)
        g = GhostArray.create(rt, (8, 8), width=1, periodic=True)
        ref = np.arange(64.0).reshape(8, 8)
        if rt.my_id == 0:
            g.ga.put((0, 0), (8, 8), ref)
        g.update_ghosts()
        halo = g.local_with_ghosts()
        block = g.ga.distribution()
        w = 1
        # every halo cell equals the periodic global value
        for i in range(halo.shape[0]):
            for j in range(halo.shape[1]):
                gi = (block.lo[0] - w + i) % 8
                gj = (block.lo[1] - w + j) % 8
                assert halo[i, j] == ref[gi, gj], (i, j)
        g.destroy()

    spmd(4, main)


def test_halo_clamped_boundaries(flavor):
    def main(comm):
        rt = _rt(comm, flavor)
        g = GhostArray.create(rt, (6, 6), width=2, periodic=False)
        if rt.my_id == 0:
            g.ga.put((0, 0), (6, 6), np.ones((6, 6)))
        g.update_ghosts()
        halo = g.local_with_ghosts()
        block = g.ga.distribution()
        # cells that fall outside the global array are zero
        for i in range(halo.shape[0]):
            gi = block.lo[0] - 2 + i
            for j in range(halo.shape[1]):
                gj = block.lo[1] - 2 + j
                expect = 1.0 if 0 <= gi < 6 and 0 <= gj < 6 else 0.0
                assert halo[i, j] == expect
        g.destroy()

    spmd(4, main)


def test_interior_view_and_store(flavor):
    def main(comm):
        rt = _rt(comm, flavor)
        g = GhostArray.create(rt, (6, 6), width=1)
        g.update_ghosts()
        g.interior()[...] = float(rt.my_id)
        g.store_local()
        full = g.ga.get((0, 0), (6, 6))
        for r in range(rt.nproc):
            b = g.ga.distribution(r)
            if not b.empty:
                sub = full[b.lo[0] : b.hi[0], b.lo[1] : b.hi[1]]
                assert np.all(sub == float(r))
        g.ga.sync()
        g.destroy()

    spmd(4, main)


def test_zero_width_ghosts(flavor):
    def main(comm):
        rt = _rt(comm, flavor)
        g = GhostArray.create(rt, (4, 4), width=0)
        g.update_ghosts()
        assert g.local_with_ghosts().shape == g.ga.distribution().shape
        g.destroy()

    spmd(2, main)


def test_width_validation():
    def main(comm):
        rt = Armci.init(comm)
        with pytest.raises(ArgumentError):
            GhostArray.create(rt, (4, 4), width=-1)
        with pytest.raises(ArgumentError):
            GhostArray.create(rt, (4, 4), width=5)
        rt.barrier()
        rt.finalize()

    spmd(2, main)


def test_jacobi_iteration_converges_distributed(flavor):
    """A real stencil solve: distributed Jacobi equals the serial one."""
    shape = (8, 8)
    steps = 5

    def serial():
        grid = np.zeros(shape)
        grid[0, :] = 1.0  # hot top edge, clamped boundaries elsewhere
        for _ in range(steps):
            padded = np.zeros((shape[0] + 2, shape[1] + 2))
            padded[1:-1, 1:-1] = grid
            new = jacobi_sweep(padded)
            new[0, :] = 1.0  # boundary condition reasserted
            grid = new
        return grid

    out = {}

    def main(comm):
        rt = _rt(comm, flavor)
        g = GhostArray.create(rt, shape, width=1, periodic=False)
        init = np.zeros(shape)
        init[0, :] = 1.0
        if rt.my_id == 0:
            g.ga.put((0, 0), shape, init)
        g.ga.sync()
        block = g.ga.distribution()
        for _ in range(steps):
            g.update_ghosts()
            new = jacobi_sweep(g.local_with_ghosts())
            if block.lo[0] == 0:  # rows on the hot edge
                new[0, :] = 1.0
            g.store_local(new)
        out["grid"] = g.ga.get((0, 0), shape)
        g.ga.sync()
        g.destroy()

    spmd(4, main)
    np.testing.assert_allclose(out["grid"], serial(), rtol=1e-13)


def test_jacobi_sweep_requires_2d():
    with pytest.raises(ArgumentError):
        jacobi_sweep(np.zeros(5))
