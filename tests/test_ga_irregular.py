"""Tests for irregular (user-specified) distributions — NGA_Create_irreg."""

from __future__ import annotations

import numpy as np
import pytest

from repro.armci import Armci
from repro.armci_native import NativeArmci
from repro.ga import (
    GlobalArray,
    IrregularDistribution,
    Patch,
    create_irregular,
    fill,
    sum_all,
)
from repro.mpi.errors import ArgumentError

from conftest import spmd


def test_boundaries_define_blocks():
    d = IrregularDistribution((10, 8), 4, [[0, 7], [0, 2]])
    assert d.dims == [2, 2]
    assert d.block(0) == Patch((0, 0), (7, 2))
    assert d.block(1) == Patch((0, 2), (7, 8))
    assert d.block(2) == Patch((7, 0), (10, 2))
    assert d.block(3) == Patch((7, 2), (10, 8))


def test_owner_respects_boundaries():
    d = IrregularDistribution((10,), 3, [[0, 3, 4]])
    assert d.owner((0,)) == 0
    assert d.owner((2,)) == 0
    assert d.owner((3,)) == 1
    assert d.owner((4,)) == 2
    assert d.owner((9,)) == 2


def test_surplus_processes_get_empty_blocks():
    d = IrregularDistribution((10,), 5, [[0, 5]])
    assert d.block(4).empty
    assert d.block(1).size == 5


def test_locate_spanning_patch():
    d = IrregularDistribution((10,), 2, [[0, 6]])
    pieces = list(d.locate(Patch((4,), (9,))))
    assert [(p.rank, p.global_patch.lo, p.global_patch.hi) for p in pieces] == [
        (0, (4,), (6,)),
        (1, (6,), (9,)),
    ]


def test_validation_errors():
    with pytest.raises(ArgumentError):
        IrregularDistribution((10,), 4, [[1, 5]])  # must start at 0
    with pytest.raises(ArgumentError):
        IrregularDistribution((10,), 4, [[0, 5, 5]])  # must increase
    with pytest.raises(ArgumentError):
        IrregularDistribution((10,), 4, [[0, 10]])  # boundary outside
    with pytest.raises(ArgumentError):
        IrregularDistribution((10,), 1, [[0, 5]])  # grid needs 2 procs
    with pytest.raises(ArgumentError):
        IrregularDistribution((10, 10), 4, [[0]])  # one list per dim


@pytest.mark.parametrize("flavor", ["mpi", "native"])
def test_irregular_global_array_roundtrip(flavor):
    def main(comm):
        rt = Armci.init(comm) if flavor == "mpi" else NativeArmci.init(comm)
        # tile-aligned boundaries: rows split 5/3, cols split 2/6
        ga = create_irregular(rt, (8, 8), [[0, 5], [0, 2]], name="irreg")
        assert isinstance(ga.dist, IrregularDistribution)
        ref = np.arange(64.0).reshape(8, 8)
        if rt.my_id == 0:
            ga.put((0, 0), (8, 8), ref)
        ga.sync()
        got = ga.get((1, 1), (7, 7))
        np.testing.assert_array_equal(got, ref[1:7, 1:7])
        ga.sync()  # all reads must finish before fill rewrites the array
        # owner-computes works with uneven blocks too
        fill(ga, 1.0)
        assert sum_all(ga) == pytest.approx(64.0)
        ga.destroy()

    spmd(4, main)


def test_irregular_matches_regular_results():
    """Same data, different distributions — identical logical contents."""

    def run(irregular: bool):
        out = {}

        def main(comm):
            rt = Armci.init(comm)
            if irregular:
                ga = create_irregular(rt, (9, 4), [[0, 2, 7], [0]], name="i")
            else:
                ga = GlobalArray.create(rt, (9, 4), "f8", name="r")
            if rt.my_id == 1:
                ga.put((0, 0), (9, 4), np.arange(36.0).reshape(9, 4))
            ga.sync()
            out["full"] = ga.get((0, 0), (9, 4))
            ga.sync()
            ga.destroy()

        spmd(3, main)
        return out["full"]

    np.testing.assert_array_equal(run(True), run(False))
