"""Tests for periodic patch ops and element-wise GA math."""

from __future__ import annotations

import numpy as np
import pytest

from repro.armci import Armci
from repro.armci_native import NativeArmci
from repro.ga import (
    GlobalArray,
    abs_value,
    add_constant,
    elem_divide,
    elem_maximum,
    elem_multiply,
    fill,
    periodic_acc,
    periodic_get,
    periodic_put,
    recip,
    select_elem,
    sum_all,
    zero,
)
from repro.mpi.errors import ArgumentError

from conftest import spmd


@pytest.fixture(params=["mpi", "native"])
def flavor(request):
    return request.param


def _rt(comm, flavor):
    return Armci.init(comm) if flavor == "mpi" else NativeArmci.init(comm)


# ---------------------------------------------------------------------------
# periodic ops
# ---------------------------------------------------------------------------


def test_periodic_get_wraps_both_dims(flavor):
    def main(comm):
        rt = _rt(comm, flavor)
        ga = GlobalArray.create(rt, (6, 6), "f8")
        ref = np.arange(36.0).reshape(6, 6)
        if rt.my_id == 0:
            ga.put((0, 0), (6, 6), ref)
        ga.sync()
        # a 4x4 patch centred on the corner (wraps on all four sides)
        got = periodic_get(ga, (-2, -2), (2, 2))
        expect = ref[np.ix_([4, 5, 0, 1], [4, 5, 0, 1])]
        np.testing.assert_array_equal(got, expect)
        ga.sync()
        ga.destroy()

    spmd(4, main)


def test_periodic_put_then_get_roundtrip(flavor):
    def main(comm):
        rt = _rt(comm, flavor)
        ga = GlobalArray.create(rt, (5, 5), "f8")
        zero(ga)
        if rt.my_id == 0:
            periodic_put(ga, (3, 3), (6, 6), np.arange(9.0).reshape(3, 3))
        ga.sync()
        got = periodic_get(ga, (3, 3), (6, 6))
        np.testing.assert_array_equal(got, np.arange(9.0).reshape(3, 3))
        # the wrap landed at the low corner
        low = ga.get((0, 0), (1, 1))
        assert low[0, 0] == 8.0
        ga.sync()
        ga.destroy()

    spmd(4, main)


def test_periodic_acc_atomicity(flavor):
    def main(comm):
        rt = _rt(comm, flavor)
        ga = GlobalArray.create(rt, (4,), "f8")
        zero(ga)
        periodic_acc(ga, (2,), (6,), np.ones(4), alpha=0.5)
        ga.sync()
        assert sum_all(ga) == pytest.approx(0.5 * 4 * rt.nproc)
        got = ga.get((0,), (4,))
        assert np.all(got == 0.5 * rt.nproc)
        ga.destroy()

    spmd(3, main)


def test_periodic_patch_too_large_raises():
    def main(comm):
        rt = Armci.init(comm)
        ga = GlobalArray.create(rt, (4, 4), "f8")
        with pytest.raises(ArgumentError):
            periodic_get(ga, (0, 0), (5, 4))  # > one full wrap
        ga.sync()
        ga.destroy()

    spmd(2, main)


def test_periodic_in_range_equals_plain_get(flavor):
    def main(comm):
        rt = _rt(comm, flavor)
        ga = GlobalArray.create(rt, (6, 4), "f8")
        ref = np.arange(24.0).reshape(6, 4)
        if rt.my_id == 0:
            ga.put((0, 0), (6, 4), ref)
        ga.sync()
        np.testing.assert_array_equal(
            periodic_get(ga, (1, 1), (4, 3)), ga.get((1, 1), (4, 3))
        )
        ga.sync()
        ga.destroy()

    spmd(2, main)


# ---------------------------------------------------------------------------
# element-wise math
# ---------------------------------------------------------------------------


def test_abs_add_constant_recip(flavor):
    def main(comm):
        rt = _rt(comm, flavor)
        ga = GlobalArray.create(rt, (4, 4), "f8")
        fill(ga, -2.0)
        abs_value(ga)
        assert sum_all(ga) == pytest.approx(32.0)
        add_constant(ga, 2.0)  # all elements 4.0
        recip(ga)  # all elements 0.25
        assert sum_all(ga) == pytest.approx(4.0)
        ga.destroy()

    spmd(4, main)


def test_recip_of_zero_raises():
    def main(comm):
        rt = Armci.init(comm)
        ga = GlobalArray.create(rt, (4,), "f8")
        zero(ga)
        # every rank owns part of the zero array, so every rank raises
        with pytest.raises(ArgumentError):
            recip(ga)

    spmd(2, main, watchdog_s=0.5)


def test_elem_multiply_divide_maximum(flavor):
    def main(comm):
        rt = _rt(comm, flavor)
        a = GlobalArray.create(rt, (6,), name="a")
        b = GlobalArray.create(rt, (6,), name="b")
        c = GlobalArray.create(rt, (6,), name="c")
        if rt.my_id == 0:
            a.put((0,), (6,), np.array([1.0, -2, 3, -4, 5, -6]))
            b.put((0,), (6,), np.array([2.0, 2, 2, 2, 2, 2]))
        a.sync()
        elem_multiply(a, b, c)
        got = c.get((0,), (6,))
        np.testing.assert_array_equal(got, [2, -4, 6, -8, 10, -12])
        elem_divide(a, b, c)
        got = c.get((0,), (6,))
        np.testing.assert_array_equal(got, [0.5, -1, 1.5, -2, 2.5, -3])
        elem_maximum(a, b, c)
        got = c.get((0,), (6,))
        np.testing.assert_array_equal(got, [2, 2, 3, 2, 5, 2])
        for g in (c, b, a):
            g.destroy()

    spmd(3, main)


def test_select_elem(flavor):
    def main(comm):
        rt = _rt(comm, flavor)
        ga = GlobalArray.create(rt, (5, 5), "f8")
        ref = np.arange(25.0).reshape(5, 5)
        ref[3, 2] = 99.0
        ref[1, 4] = -50.0
        if rt.my_id == 0:
            ga.put((0, 0), (5, 5), ref)
        ga.sync()
        vmax, imax = select_elem(ga, "max")
        vmin, imin = select_elem(ga, "min")
        assert (vmax, imax) == (99.0, (3, 2))
        assert (vmin, imin) == (-50.0, (1, 4))
        ga.sync()
        ga.destroy()

    spmd(4, main)


def test_select_elem_bad_kind():
    def main(comm):
        rt = Armci.init(comm)
        ga = GlobalArray.create(rt, (4,), "f8")
        with pytest.raises(ArgumentError):
            select_elem(ga, "median")
        ga.sync()
        ga.destroy()

    spmd(1, main)
