"""Cache-invalidation regression tests for the vectorized datapath.

Every cache added for the hot path must also be *safe*: freeing a
datatype drops its per-count segment maps, freeing an allocation never
leaves a stale translation-table entry behind (even when a later
allocation reuses the virtual address range), and the datatype memos
stay bounded under churn.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.armci import Armci
from repro.armci.gmr import GmrTable
from repro.armci.iov import (
    IOV_DATATYPE_CACHE_MAX,
    _hindexed_cached,
    iov_datatype_cache_clear,
    iov_datatype_cache_len,
)
from repro.armci.strided import (
    STRIDED_DATATYPE_CACHE_MAX,
    strided_datatype,
    strided_datatype_cache_clear,
    strided_datatype_cache_len,
)
from repro.bench.hotpath import _BenchGmr
from repro.mpi import datatypes as dt

from conftest import spmd


# ---------------------------------------------------------------------------
# Datatype per-count segment-map cache
# ---------------------------------------------------------------------------


def test_datatype_free_drops_count_map_cache():
    t = dt.vector(4, 2, 3, dt.INT).commit()
    for c in (1, 2, 3):
        t.segment_map(c)
    # count=1 is served by the dedicated _segmap slot; 2 and 3 land here
    assert len(t._count_maps) == 2
    t.free()
    assert len(t._count_maps) == 0
    with pytest.raises(dt.DatatypeError):
        t.segment_map(2)


def test_count_map_cache_hits_and_bound():
    t = dt.vector(8, 1, 2, dt.BYTE).commit()
    assert t.segment_map(3) is t.segment_map(3)  # cached object reused
    for c in range(1, dt.Datatype._COUNT_CACHE_MAX + 2):
        t.segment_map(c)
    assert len(t._count_maps) <= dt.Datatype._COUNT_CACHE_MAX
    # evicted entries are rebuilt correctly, not served stale
    rebuilt = t.segment_map(3)
    assert rebuilt.total_bytes == 3 * t.size


def test_recommit_after_free_rebuilds_segment_maps():
    t = dt.vector(4, 2, 3, dt.INT).commit()
    before = t.segment_map(2)
    t.free()
    t.commit()
    after = t.segment_map(2)
    np.testing.assert_array_equal(before.offsets, after.offsets)
    np.testing.assert_array_equal(before.lengths, after.lengths)


# ---------------------------------------------------------------------------
# GmrTable last-hit cache vs. free + re-malloc at a reused address
# ---------------------------------------------------------------------------


def test_gmr_hot_entry_dropped_on_unregister():
    table = GmrTable()
    old = _BenchGmr(0x1000, 0x100)
    table.register(old)
    assert table.lookup(0, 0x1040) is old  # primes the hot entry
    table.unregister(old)
    assert table.lookup(0, 0x1040) is None
    # a new allocation at the *same* base must resolve to the new GMR
    new = _BenchGmr(0x1000, 0x100)
    table.register(new)
    assert table.lookup(0, 0x1040) is new


def test_gmr_hot_entry_survives_unrelated_unregister():
    table = GmrTable()
    a = _BenchGmr(0x1000, 0x100)
    b = _BenchGmr(0x9000, 0x100)
    table.register(a)
    table.register(b)
    assert table.lookup(0, 0x1010) is a
    table.unregister(b)
    assert table.lookup(0, 0x1010) is a


def test_armci_free_then_remalloc_at_reused_va():
    """ARMCI_Free + re-ARMCI_Malloc landing on the same virtual range
    (forced by rewinding the simulated VA cursor) must translate to the
    fresh GMR, never the freed one."""

    def main(comm):
        a = Armci.init(comm)
        p1 = a.malloc(64)
        gmr1 = a.table.require(p1[0])
        # hammer the lookup so the hot entry points at gmr1 on every rank
        for _ in range(4):
            assert a.table.lookup(0, p1[0].addr + 8) is gmr1
        cursor = dict(a.table._next_va)
        a.barrier()
        a.free(p1[a.my_id])
        assert a.table.lookup(0, p1[0].addr + 8) is None
        # rewind the VA allocator so the next malloc reuses the range
        a.table._next_va.clear()
        a.table._next_va.update({r: c - 64 for r, c in cursor.items()})
        p2 = a.malloc(64)
        assert p2[0].addr == p1[0].addr
        gmr2 = a.table.require(p2[0])
        assert gmr2 is not gmr1
        assert a.table.lookup(0, p1[0].addr + 8) is gmr2
        a.barrier()
        a.free(p2[a.my_id])
        a.finalize()

    spmd(2, main)


# ---------------------------------------------------------------------------
# strided / IOV datatype LRUs: bounded, and safe against caller free()
# ---------------------------------------------------------------------------


def test_strided_datatype_lru_is_bounded():
    strided_datatype_cache_clear()
    try:
        for i in range(STRIDED_DATATYPE_CACHE_MAX + 40):
            strided_datatype((8 + i,), (4, 3))
        assert strided_datatype_cache_len() <= STRIDED_DATATYPE_CACHE_MAX
    finally:
        strided_datatype_cache_clear()


def test_strided_datatype_cache_hit_recommits_freed_entry():
    strided_datatype_cache_clear()
    try:
        t1 = strided_datatype((16,), (8, 4))
        t1.free()  # a rogue caller frees the shared entry
        t2 = strided_datatype((16,), (8, 4))
        assert t2 is t1 and t2.committed
        assert t2.segment_map().nsegments == 4
    finally:
        strided_datatype_cache_clear()


def test_iov_datatype_lru_is_bounded_and_keyed_by_displacements():
    iov_datatype_cache_clear()
    try:
        d = np.arange(4, dtype=np.int64) * 32
        t1 = _hindexed_cached(8, d, dt.BYTE)
        assert _hindexed_cached(8, d.copy(), dt.BYTE) is t1  # value-keyed
        assert _hindexed_cached(8, d + 1, dt.BYTE) is not t1
        for i in range(IOV_DATATYPE_CACHE_MAX + 20):
            _hindexed_cached(8, d + i, dt.BYTE)
        assert iov_datatype_cache_len() <= IOV_DATATYPE_CACHE_MAX
    finally:
        iov_datatype_cache_clear()
