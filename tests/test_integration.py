"""Kitchen-sink integration: every layer exercised together on 8 ranks.

One SPMD program that touches the full stack the way a real GA
application would — groups, allocations, access modes, strided/IOV
traffic, mutexes, counters, DLA, GA math, ghost exchange, tracing —
with end-state assertions.  If any two subsystems interact badly, this
is where it shows.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.armci import AccessMode, Armci, ArmciConfig, TracingArmci
from repro.ga import (
    GlobalArray,
    SharedCounter,
    TaskPool,
    dgemm,
    dot,
    fill,
    gather,
    scatter_acc,
    sum_all,
    zero,
)
from repro.ga.ghosts import GhostArray, jacobi_sweep

from conftest import spmd


def test_full_stack_workout():
    def main(comm):
        armci = TracingArmci(Armci.init(comm, ArmciConfig(iov_method="auto")))
        me, nproc = armci.my_id, armci.nproc

        # --- phase 1: raw ARMCI ring traffic -----------------------------
        ptrs = armci.malloc(256)
        right = (me + 1) % nproc
        armci.put(np.full(8, float(me)), ptrs[right])
        armci.barrier()
        mine = np.zeros(8)
        armci.get(ptrs[me], mine)
        assert np.all(mine == float((me - 1) % nproc))
        armci.barrier()

        # --- phase 2: access-mode-hinted accumulate storm ----------------
        armci.set_access_mode(ptrs[0], AccessMode.ACC_ONLY)
        for _ in range(5):
            armci.acc(np.ones(4), ptrs[0] + 64)
        armci.barrier()
        armci.set_access_mode(ptrs[0], AccessMode.DEFAULT)
        if me == 0:
            v = np.zeros(4)
            armci.get(ptrs[0] + 64, v)
            assert np.all(v == 5.0 * nproc)
        armci.barrier()

        # --- phase 3: mutex-protected read-modify-write -------------------
        mtx = armci.create_mutexes(2)
        for _ in range(3):
            mtx.lock(1, 0)
            v = np.zeros(1)
            armci.get(ptrs[0] + 128, v)
            armci.put(v + 1.0, ptrs[0] + 128)
            mtx.unlock(1, 0)
        armci.barrier()
        if me == 0:
            v = np.zeros(1)
            armci.get(ptrs[0] + 128, v)
            assert v[0] == 3.0 * nproc
        armci.barrier()

        # --- phase 4: GA math over the same runtime -----------------------
        n = 12
        A = GlobalArray.create(armci, (n, n), name="A")
        B = GlobalArray.create(armci, (n, n), name="B")
        C = GlobalArray.create(armci, (n, n), name="C")
        fill(A, 1.0)
        fill(B, 2.0)
        dgemm(1.0, A, B, 0.0, C)
        assert dot(C, C) == pytest.approx(n * n * (2.0 * n) ** 2)

        # --- phase 5: element scatter + NXTVAL task pool -------------------
        D = GlobalArray.create(armci, (nproc * 4,), name="D")
        zero(D)
        pool = TaskPool(armci, nproc * 4)
        my_tasks = list(pool.tasks())
        scatter_acc(D, [(t,) for t in my_tasks], np.ones(len(my_tasks)))
        D.sync()
        assert sum_all(D) == pytest.approx(nproc * 4)
        got = gather(D, [(i,) for i in range(nproc * 4)])
        assert np.all(got == 1.0), "every task processed exactly once"
        pool.destroy()

        # --- phase 6: ghost-cell stencil step ------------------------------
        G = GhostArray.create(armci, (8, 8), width=1, periodic=True)
        fill(G.ga, 1.0)
        G.update_ghosts()
        new = jacobi_sweep(G.local_with_ghosts())
        assert np.allclose(new, 1.0)  # uniform field is a fixed point
        G.store_local(new)

        # --- wrap up --------------------------------------------------------
        armci.barrier()
        ops = armci.summary_by_op()
        assert ops.get("put_s") or ops.get("get_s"), "GA traffic was traced"
        for ga_obj in (G.ga, D, C, B, A):
            ga_obj.destroy()
        mtx.destroy()
        armci.free(ptrs[me])
        assert len(armci.table) == 0, "no leaked allocations"
        return True

    assert all(spmd(8, main, watchdog_s=15.0))
