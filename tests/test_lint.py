"""repro.lint: corpus conformance, suppressions, engine behavior, repo gate."""

import re
from pathlib import Path

import pytest

from repro.lint import (
    STATIC_RULES,
    Diagnostic,
    ViolationKind,
    lint_file,
    lint_paths,
    lint_source,
    parse_suppressions,
)
from repro.lint.cli import main
from repro.sanitizer.violations import CATALOG, LINT_ONLY_KINDS

CORPUS = Path(__file__).parent / "lint_corpus"
REPO = Path(__file__).resolve().parents[1]

_EXPECT_RE = re.compile(r"#\s*expect:\s*([a-z0-9-]+)")


def _expected(path: Path) -> set:
    out = set()
    for lineno, text in enumerate(path.read_text().splitlines(), start=1):
        for code in _EXPECT_RE.findall(text):
            out.add((lineno, code))
    return out


BAD = sorted(CORPUS.glob("bad_*.py"))
GOOD = sorted(CORPUS.glob("good_*.py"))


# -- the corpus is the linter's conformance suite ---------------------------------


def test_corpus_covers_every_static_rule():
    stems = {p.stem[len("bad_"):] for p in BAD}
    want = {k.value.replace("-", "_") for k in STATIC_RULES}
    assert stems == want
    # every rule has its good_ counterpart; extra good_ exemplars beyond
    # the rule set (e.g. good_backend_window.py, the backend-owned
    # window-lifetime note) are welcome and must simply stay clean
    assert {p.stem[len("good_"):] for p in GOOD} >= want


@pytest.mark.parametrize("path", BAD, ids=lambda p: p.stem)
def test_bad_snippet_fires_exactly_where_marked(path):
    expected = _expected(path)
    assert expected, f"{path} has no '# expect:' markers"
    got = {(d.line, d.code) for d in lint_file(str(path))}
    assert got == expected


@pytest.mark.parametrize("path", GOOD, ids=lambda p: p.stem)
def test_good_snippet_is_clean(path):
    assert lint_file(str(path)) == []


def test_every_bad_snippet_names_its_own_rule():
    # bad_<rule>.py must fire <rule> (it may not fire a different code)
    for path in BAD:
        rule = path.stem[len("bad_"):].replace("_", "-")
        codes = {code for _, code in _expected(path)}
        assert rule in codes, f"{path.name} does not expect [{rule}]"


# -- the whole-repo gate: zero findings, zero parse errors ------------------------


def test_repo_is_lint_clean():
    paths = [str(REPO / d) for d in ("examples", "benchmarks", "src", "tests")]
    diags, errors = lint_paths(paths)
    assert errors == []
    assert diags == [], "\n" + "\n".join(d.format() for d in diags)


# -- rule table / catalog plumbing -------------------------------------------------


def test_static_rules_share_the_sanitizer_catalog():
    assert set(STATIC_RULES) <= set(CATALOG)
    assert LINT_ONLY_KINDS <= set(STATIC_RULES)
    for kind in STATIC_RULES:
        assert CATALOG[kind].section.startswith("§")


def test_diagnostic_format_carries_code_and_section():
    d = Diagnostic("x.py", 3, 7, ViolationKind.EPOCH, "boom")
    s = d.format()
    assert s.startswith("x.py:3:7: [epoch] (")
    assert CATALOG[ViolationKind.EPOCH].section in s
    assert s.endswith("boom")


# -- suppression syntax ------------------------------------------------------------

_VIOLATING = """\
from repro.mpi import Win


def body(comm, buf):
    win, _ = Win.allocate(comm, 64)
    win.put(buf, 1){}
"""


def test_inline_suppression_silences_the_line():
    assert lint_source(_VIOLATING.format("")) != []
    assert lint_source(_VIOLATING.format("  # repro: lint-ignore[epoch]")) == []
    # a different code does not suppress
    assert lint_source(_VIOLATING.format("  # repro: lint-ignore[flush]")) != []
    # bare ignore suppresses every code
    assert lint_source(_VIOLATING.format("  # repro: lint-ignore")) == []


def test_standalone_comment_applies_to_next_line():
    src = _VIOLATING.format("").replace(
        "    win.put", "    # repro: lint-ignore[epoch]\n    win.put"
    )
    assert lint_source(src) == []


def test_file_level_suppression():
    src = "# repro: lint-ignore-file[epoch]\n" + _VIOLATING.format("")
    assert lint_source(src) == []
    src_other = "# repro: lint-ignore-file[flush]\n" + _VIOLATING.format("")
    assert lint_source(src_other) != []
    src_all = "# repro: lint-ignore-file\n" + _VIOLATING.format("")
    assert lint_source(src_all) == []


def test_suppression_parser_merges_codes():
    sup = parse_suppressions(
        "x = 1  # repro: lint-ignore[epoch]  # repro: lint-ignore[flush]\n"
    )
    d = Diagnostic("x.py", 1, 1, ViolationKind.EPOCH, "m")
    assert sup.suppresses(d)


# -- engine behavior beyond the corpus ---------------------------------------------


def test_unlock_in_finally_is_not_a_leak():
    src = """\
from repro.mpi import Win


def body(comm, buf, work):
    win, _ = Win.allocate(comm, 64)
    win.lock(0)
    try:
        for item in work:
            if item is None:
                return
            win.put(buf, 0)
    finally:
        win.unlock(0)
"""
    assert lint_source(src) == []


def test_leak_reported_on_early_return_only_path():
    src = """\
from repro.armci import Armci


def body(comm, cond):
    armci = Armci.init(comm)
    ptrs = armci.malloc(64)
    if cond:
        return
    armci.free(ptrs[armci.my_id])
"""
    diags = lint_source(src)
    assert [d.code for d in diags] == ["lint-leak"]
    assert diags[0].line == 6  # reported at the acquisition site


def test_pytest_raises_body_is_exempt():
    src = """\
import pytest

from repro.mpi import Win


def body(comm, buf):
    win, _ = Win.allocate(comm, 64)
    with pytest.raises(RuntimeError):
        win.put(buf, 1)
"""
    assert lint_source(src) == []


def test_second_loop_iteration_misuse_is_seen():
    src = """\
from repro.mpi import Win


def body(comm, buf):
    win, _ = Win.allocate(comm, 64)
    for _ in range(3):
        win.lock(0)
        win.put(buf, 0)
"""
    codes = {d.code for d in lint_source(src)}
    assert "lock-nesting" in codes


def test_recovery_agree_and_shrink_are_valid_epoch_exit_points():
    """The ULFM recovery boundary: an epoch abandoned with the wounded
    world on a path through ``agree``/``shrink`` is not a leak, while the
    success path's unlock is still a matched release."""
    src = """\
from repro.mpi import Win


def body(comm, buf):
    win, _ = Win.allocate(comm, 64)
    win.lock(0)
    win.put(buf, 0)
    if not comm.agree(1):
        comm.shrink()
        return  # the epoch died with the revoked world: not a leak
    win.unlock(0)
"""
    assert lint_source(src) == []
    # without the agree()/shrink() exits the same shape is a definite leak
    leaky = src.replace("if not comm.agree(1):", "if not bool(buf):").replace(
        "comm.shrink()", "pass"
    )
    assert [d.code for d in lint_source(leaky)] == ["lint-leak"]


def test_escaped_values_silence_the_checks():
    src = """\
from repro.armci import Armci


def body(comm, stash):
    armci = Armci.init(comm)
    ptrs = armci.malloc(64)
    stash(ptrs)  # ownership transferred to an unknown callee
"""
    assert lint_source(src) == []


def test_conditional_release_is_not_definite_leak():
    # may-held resources never produce leak findings (must-based rule)
    src = """\
from repro.armci import Armci


def body(comm, cond):
    armci = Armci.init(comm)
    if cond:
        ptrs = armci.malloc(64)
        armci.free(ptrs[armci.my_id])
"""
    assert lint_source(src) == []


def test_discarded_request_flagged_at_statement():
    src = """\
from repro.mpi import Win


def body(comm, buf):
    win, _ = Win.allocate(comm, 64, mpi3=True)
    win.lock(1)
    win.rput(buf, 1)
    win.unlock(1)
"""
    diags = lint_source(src)
    assert [d.code for d in diags] == ["request"]
    assert diags[0].line == 7


# -- CLI contract ------------------------------------------------------------------


def test_cli_exit_codes(tmp_path, capsys):
    bad = next(iter(BAD))
    good = next(iter(GOOD))
    assert main([str(good), "-q"]) == 0
    assert main([str(bad), "-q"]) == 1
    out = capsys.readouterr().out
    assert f"[{bad.stem[len('bad_'):].replace('_', '-')}]" in out
    assert main([]) == 2  # no paths is a usage error
    broken = tmp_path / "broken.py"
    broken.write_text("def oops(:\n")
    assert main([str(broken)]) == 2
    assert main(["--rules"]) == 0


def test_cli_skips_corpus_unless_asked():
    assert main([str(CORPUS), "-q"]) == 0
    assert main([str(CORPUS), "-q", "--include-corpus"]) == 1
