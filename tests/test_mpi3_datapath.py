"""Tests for the first-class MPI-3 flush datapath (``datapath="mpi3"``).

Covers the PR's acceptance contract: nonblocking operations observably
*defer* (the target is untouched and ``test()`` reports False until a
completion point), the coalescing queue merges adjacent small ops,
conflicting enqueues pre-drain to preserve location consistency, and
the strided/IOV/RMW surfaces all stay value-correct on the flush path.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.armci import Armci, ArmciConfig
from repro.mpi.errors import ArgumentError

from conftest import spmd


def _local_bytes(a: Armci, ptr, nbytes: int) -> np.ndarray:
    """Snapshot the calling rank's own slab through DLA."""
    buf = a.access_begin(ptr, nbytes)
    out = buf.copy()
    a.access_end(ptr)
    return out


# ---------------------------------------------------------------------------
# deferral: the acceptance test — nb ops observably do nothing until a
# completion point
# ---------------------------------------------------------------------------


def test_nb_put_defers_until_wait():
    def main(comm):
        a = Armci.init(comm, datapath="mpi3")
        ptrs = a.malloc(8)
        me = a.my_id
        data = np.full(8, 7, dtype=np.uint8)
        a.barrier()
        if me == 0:
            h = a.nb_put(data, ptrs[1], 8)
            assert h.test() is False, "queued op must not report complete"
            assert a._nbq.pending() == 1
            comm.send(None, 1, tag=1)  # "queued, not drained"
            comm.recv(source=1, tag=2)  # target confirmed it saw nothing
            h.wait()
            assert h.test() is True
            assert a._nbq.pending() == 0
            comm.send(None, 1, tag=3)
        else:
            comm.recv(source=0, tag=1)
            assert not _local_bytes(a, ptrs[1], 8).any(), (
                "nb_put must not touch the target before a completion point"
            )
            comm.send(None, 0, tag=2)
            comm.recv(source=0, tag=3)
            assert (_local_bytes(a, ptrs[1], 8) == 7).all()
        a.barrier()
        a.free(ptrs[me])

    spmd(2, main)


def test_nb_get_fills_destination_only_at_wait():
    def main(comm):
        a = Armci.init(comm, datapath="mpi3")
        ptrs = a.malloc(8)
        me = a.my_id
        if me == 1:
            buf = a.access_begin(ptrs[1], 8)
            buf[:] = 9
            a.access_end(ptrs[1])
        a.barrier()
        if me == 0:
            out = np.zeros(8, dtype=np.uint8)
            h = a.nb_get(ptrs[1], out, 8)
            assert h.test() is False
            assert not out.any(), "nb_get must not fill before the drain"
            h.wait()
            assert (out == 9).all()
        a.barrier()
        a.free(ptrs[me])

    spmd(2, main)


def test_fence_and_barrier_drain_the_queue():
    def main(comm):
        a = Armci.init(comm, datapath="mpi3")
        ptrs = a.malloc(16)
        me = a.my_id
        a.barrier()
        h = a.nb_put(np.full(4, me + 1, dtype=np.uint8), ptrs[1 - me], 4)
        assert a._nbq.pending() == 1
        a.fence(1 - me)  # per-target remote completion
        assert a._nbq.pending() == 0
        assert h.test() is True
        h2 = a.nb_acc(np.ones(1, dtype=np.int64), ptrs[1 - me] + 8, 1.0, 8)
        a.barrier()  # fence_all + process barrier
        assert h2.test() is True
        assert (_local_bytes(a, ptrs[me], 4) == 2 - me).all()
        a.free(ptrs[me])

    spmd(2, main)


# ---------------------------------------------------------------------------
# coalescing
# ---------------------------------------------------------------------------


def test_adjacent_puts_coalesce_into_one_entry():
    def main(comm):
        cfg = ArmciConfig(nb_coalesce_threshold=64)
        a = Armci.init(comm, config=cfg, datapath="mpi3")
        ptrs = a.malloc(64)
        me = a.my_id
        a.barrier()
        if me == 0:
            src = np.arange(64, dtype=np.uint8)
            handles = [a.nb_put(src[i * 8 : (i + 1) * 8], ptrs[1] + i * 8, 8)
                       for i in range(8)]
            # 8 adjacent 8-byte puts within the 64-byte cap -> one entry
            assert a._nbq.pending() == 1
            assert a._nbq.coalesced == 7
            a.wait_all(handles)
            assert all(h.test() for h in handles)
        a.barrier()
        if me == 1:
            assert (_local_bytes(a, ptrs[1], 64) == np.arange(64)).all()
        a.barrier()
        a.free(ptrs[me])

    spmd(2, main)


def test_threshold_zero_disables_coalescing():
    def main(comm):
        cfg = ArmciConfig(nb_coalesce_threshold=0)
        a = Armci.init(comm, config=cfg, datapath="mpi3")
        ptrs = a.malloc(64)
        a.barrier()
        if a.my_id == 0:
            src = np.arange(64, dtype=np.uint8)
            handles = [a.nb_put(src[i * 8 : (i + 1) * 8], ptrs[1] + i * 8, 8)
                       for i in range(8)]
            assert a._nbq.pending() == 8
            assert a._nbq.coalesced == 0
            a.wait_all(handles)
        a.barrier()
        if a.my_id == 1:
            assert (_local_bytes(a, ptrs[1], 64) == np.arange(64)).all()
        a.barrier()
        a.free(ptrs[a.my_id])

    spmd(2, main)


def test_coalescing_respects_threshold_cap():
    def main(comm):
        cfg = ArmciConfig(nb_coalesce_threshold=16)
        a = Armci.init(comm, config=cfg, datapath="mpi3")
        ptrs = a.malloc(64)
        a.barrier()
        if a.my_id == 0:
            src = np.arange(64, dtype=np.uint8)
            for i in range(8):
                a.nb_put(src[i * 8 : (i + 1) * 8], ptrs[1] + i * 8, 8)  # repro: lint-ignore[nb-pending]
            # merged pairwise: 16-byte entries, never past the cap
            assert a._nbq.pending() == 4
            a.fence(1)
        a.barrier()
        if a.my_id == 1:
            assert (_local_bytes(a, ptrs[1], 64) == np.arange(64)).all()
        a.barrier()
        a.free(ptrs[a.my_id])

    spmd(2, main)


def test_acc_coalescing_keeps_accumulation_semantics():
    def main(comm):
        a = Armci.init(comm, datapath="mpi3")
        ptrs = a.malloc(32)
        a.barrier()
        if a.my_id == 0:
            one = np.ones(2, dtype=np.int64)
            handles = [a.nb_acc(one, ptrs[1] + i * 16, 1.0, 16) for i in range(2)]
            assert a._nbq.pending() == 1  # adjacent same-dtype accs merge
            handles += [a.nb_acc(one, ptrs[1] + i * 16, 1.0, 16) for i in range(2)]
            a.wait_all(handles)
        a.barrier()
        if a.my_id == 1:
            vals = _local_bytes(a, ptrs[1], 32).view(np.int64)
            assert (vals == 2).all()
        a.barrier()
        a.free(ptrs[a.my_id])

    spmd(2, main)


# ---------------------------------------------------------------------------
# queue discipline: conflicts and depth
# ---------------------------------------------------------------------------


def test_conflicting_enqueue_pre_drains_for_location_consistency():
    def main(comm):
        cfg = ArmciConfig(nb_coalesce_threshold=0)
        a = Armci.init(comm, config=cfg, datapath="mpi3")
        ptrs = a.malloc(8)
        a.barrier()
        if a.my_id == 0:
            h1 = a.nb_put(np.full(8, 3, dtype=np.uint8), ptrs[1], 8)
            out = np.zeros(8, dtype=np.uint8)
            # overlapping get conflicts with the queued put: the queue
            # drains first, so per-location program order holds
            h2 = a.nb_get(ptrs[1], out, 8)
            assert h1.test() is True, "conflict must have drained the put"
            h2.wait()
            assert (out == 3).all()
        a.barrier()
        a.free(ptrs[a.my_id])

    spmd(2, main)


def test_blocking_op_completes_queued_conflicts_first():
    def main(comm):
        a = Armci.init(comm, datapath="mpi3")
        ptrs = a.malloc(8)
        a.barrier()
        if a.my_id == 0:
            a.nb_put(np.full(8, 5, dtype=np.uint8), ptrs[1], 8)  # repro: lint-ignore[nb-pending]
            out = np.zeros(8, dtype=np.uint8)
            a.get(ptrs[1], out, 8)  # blocking read of the same location
            assert (out == 5).all()
        a.barrier()
        a.free(ptrs[a.my_id])

    spmd(2, main)


def test_queue_auto_drains_past_max_pending():
    def main(comm):
        cfg = ArmciConfig(nb_coalesce_threshold=0, nb_max_pending=4)
        a = Armci.init(comm, config=cfg, datapath="mpi3")
        ptrs = a.malloc(64)
        a.barrier()
        if a.my_id == 0:
            src = np.arange(48, dtype=np.uint8)
            for i in range(6):
                a.nb_put(src[i * 8 : (i + 1) * 8], ptrs[1] + i * 8, 8)  # repro: lint-ignore[nb-pending]
            assert a._nbq.pending() <= 4
            assert a._nbq.drains >= 1
            a.fence(1)
        a.barrier()
        if a.my_id == 1:
            assert (_local_bytes(a, ptrs[1], 48) == np.arange(48)).all()
        a.barrier()
        a.free(ptrs[a.my_id])

    spmd(2, main)


# ---------------------------------------------------------------------------
# handle semantics
# ---------------------------------------------------------------------------


def test_wait_all_surfaces_first_failure_with_kind_and_target():
    def main(comm):
        a = Armci.init(comm, datapath="mpi3")
        ptrs = a.malloc(16)
        a.barrier()
        if a.my_id == 0:
            h1 = a.nb_put(np.ones(8, dtype=np.uint8), ptrs[1], 8)
            h2 = a.nb_put(np.ones(8, dtype=np.uint8), ptrs[1] + 8, 8)
            # fail both handles the way recovery does when the world dies
            a._nbq.discard(RuntimeError("boom"))
            assert h1.test() and h2.test()  # failed counts as complete
            with pytest.raises(RuntimeError, match="boom") as ei:
                a.wait_all([h1, h2])
            notes = "\n".join(getattr(ei.value, "__notes__", []))
            assert "nb_put" in notes and "target 1" in notes
            assert "+1 more failed handle" in notes
        a.barrier()
        a.free(ptrs[a.my_id])

    spmd(2, main)


def test_failed_handle_reraises_on_every_wait():
    def main(comm):
        a = Armci.init(comm, datapath="mpi3")
        ptrs = a.malloc(8)
        a.barrier()
        if a.my_id == 0:
            h = a.nb_put(np.ones(8, dtype=np.uint8), ptrs[1], 8)
            a._nbq.discard(ValueError("gone"))
            for _ in range(2):
                with pytest.raises(ValueError, match="gone"):
                    h.wait()
        a.barrier()
        a.free(ptrs[a.my_id])

    spmd(2, main)


def test_mpi2_nb_get_writeback_runs_exactly_once_under_polling():
    """Satellite fix: repeated test() must not re-run the staged write-back."""

    def main(comm):
        a = Armci.init(comm)  # mpi2: eager, only the write-back is deferred
        ptrs = a.malloc(16)
        me = a.my_id
        a.put(np.full(8, 4, dtype=np.uint8), ptrs[me] + 8, 8)
        a.barrier()
        # destination inside global memory -> staged get with write-back
        h = a.nb_get(ptrs[1 - me] + 8, ptrs[me], 8)
        assert h.test() is True
        assert h.test() is True  # idempotent; callback already consumed
        h.wait()
        assert (_local_bytes(a, ptrs[me], 8) == 4).all()
        a.barrier()
        a.free(ptrs[me])

    spmd(2, main)


def test_nb_zero_byte_op_is_immediately_complete():
    def main(comm):
        a = Armci.init(comm, datapath="mpi3")
        ptrs = a.malloc(8)
        a.barrier()
        h = a.nb_put(np.zeros(0, dtype=np.uint8), ptrs[1 - a.my_id], 0)
        assert h.test() is True
        assert a._nbq.pending() == 0
        h.wait()
        a.barrier()
        a.free(ptrs[a.my_id])

    spmd(2, main)


# ---------------------------------------------------------------------------
# the rest of the ARMCI surface on the flush path
# ---------------------------------------------------------------------------


def test_rmw_fetch_and_add_under_mpi3():
    def main(comm):
        a = Armci.init(comm, datapath="mpi3")
        ptrs = a.malloc(8 if a.my_id == 0 else 0)
        a.barrier()
        seen = [a.rmw("fetch_and_add_long", ptrs[0], 1) for _ in range(5)]
        a.barrier()
        if a.my_id == 0:
            counter = _local_bytes(a, ptrs[0], 8).view(np.int64)[0]
            assert counter == 5 * a.nproc
        assert len(set(seen)) == len(seen)  # each fetch saw a unique value
        a.barrier()
        a.free(ptrs[a.my_id] if a.my_id == 0 else None)

    spmd(4, main)


def test_strided_roundtrip_under_mpi3():
    def main(comm):
        a = Armci.init(comm, datapath="mpi3")
        ptrs = a.malloc(64)
        me = a.my_id
        a.barrier()
        if me == 0:
            src = np.arange(16, dtype=np.uint8)
            # 4 segments of 4 bytes, remote stride 16
            a.put_s(src, [4], ptrs[1], [16], [4, 4])
            out = np.zeros(16, dtype=np.uint8)
            a.get_s(ptrs[1], [16], out, [4], [4, 4])
            assert (out == src).all()
        a.barrier()
        if me == 1:
            slab = _local_bytes(a, ptrs[1], 64)
            for seg in range(4):
                assert (slab[seg * 16 : seg * 16 + 4]
                        == np.arange(seg * 4, seg * 4 + 4)).all()
        a.barrier()
        a.free(ptrs[me])

    spmd(2, main)


def test_iov_roundtrip_under_mpi3():
    def main(comm):
        a = Armci.init(comm, datapath="mpi3")
        ptrs = a.malloc(64)
        a.barrier()
        if a.my_id == 0:
            src = np.arange(12, dtype=np.uint8)
            dsts = [ptrs[1], ptrs[1] + 24, ptrs[1] + 48]
            a.putv(src, [0, 4, 8], dsts, 4)
            out = np.zeros(12, dtype=np.uint8)
            a.getv(dsts, out, [0, 4, 8], 4)
            assert (out == src).all()
        a.barrier()
        a.free(ptrs[a.my_id])

    spmd(2, main)


def test_free_drains_queued_ops_to_the_dying_gmr():
    def main(comm):
        a = Armci.init(comm, datapath="mpi3")
        ptrs = a.malloc(8)
        a.barrier()
        h = a.nb_put(np.full(8, a.my_id + 1, dtype=np.uint8), ptrs[1 - a.my_id], 8)
        a.barrier()  # barrier drains; then free must find nothing queued
        assert h.test() is True
        a.free(ptrs[a.my_id])
        assert a._nbq.pending() == 0

    spmd(2, main)


def test_ga_nxtval_counter_under_mpi3():
    """GA's NXTVAL counter rides the native fetch_and_op on this path."""

    def main(comm):
        from repro.ga.counters import SharedCounter

        a = Armci.init(comm, datapath="mpi3")
        c = SharedCounter(a)
        tasks = [c.next() for _ in range(3)]
        a.barrier()
        assert c.read() == 3 * a.nproc
        assert len(set(tasks)) == 3
        c.destroy()

    spmd(4, main)


def test_datapath_argument_validated():
    def main(comm):
        with pytest.raises(ArgumentError):
            Armci.init(comm, datapath="mpi4")

    spmd(2, main)


def test_finalize_audits_drained_queues():
    """The drained-queue-at-finalize invariant holds on the clean path."""

    def main(comm):
        a = Armci.init(comm, datapath="mpi3")
        ptrs = a.malloc(8)
        a.barrier()
        a.nb_put(np.ones(8, dtype=np.uint8), ptrs[1 - a.my_id], 8)  # repro: lint-ignore[nb-pending]
        a.finalize()  # barrier + free drain everything; audit stays quiet
        assert a._nbq.pending() == 0

    spmd(2, main)


def test_mpi3_datapath_implies_mpi3_windows():
    def main(comm):
        a = Armci.init(comm, datapath="mpi3")
        assert a.mpi3 is True
        assert a.datapath == "mpi3"
        b_ptrs = a.malloc(8)
        a.barrier()
        a.free(b_ptrs[a.my_id])

    spmd(2, main)

    def main2(comm):
        a = Armci.init(comm)
        assert a.datapath == "mpi2"
        assert a._flush_mode is False

    spmd(2, main2)
