"""Tests for collective operations and communicator management."""

from __future__ import annotations

import numpy as np
import pytest

from repro import mpi
from repro.mpi.errors import ArgumentError, InternalError, RankError

from conftest import spmd


def test_barrier_all_ranks():
    order = []

    def main(comm):
        order.append(("pre", comm.rank))
        comm.barrier()
        order.append(("post", comm.rank))

    spmd(4, main)
    pres = [i for i, (k, _) in enumerate(order) if k == "pre"]
    posts = [i for i, (k, _) in enumerate(order) if k == "post"]
    assert max(pres) < min(posts)


def test_bcast_buffer():
    def main(comm):
        buf = np.zeros(5, dtype="i4")
        if comm.rank == 2:
            buf[:] = [1, 2, 3, 4, 5]
        comm.bcast(buf, root=2)
        assert buf.tolist() == [1, 2, 3, 4, 5]

    spmd(4, main)


def test_bcast_obj():
    def main(comm):
        obj = {"x": 1} if comm.rank == 0 else None
        got = comm.bcast_obj(obj, root=0)
        assert got == {"x": 1}

    spmd(3, main)


def test_bcast_size_mismatch_raises():
    def main(comm):
        buf = np.zeros(5 if comm.rank == 0 else 3)
        if comm.rank == 0:
            comm.bcast(buf, root=0)
        else:
            with pytest.raises(ArgumentError):
                comm.bcast(buf, root=0)

    # the inner pytest.raises asserts non-root ranks raise; rank 0 completes
    spmd(2, main)


def test_gather_and_allgather():
    def main(comm):
        g = comm.gather(comm.rank * 10, root=1)
        if comm.rank == 1:
            assert g == [0, 10, 20, 30]
        else:
            assert g is None
        ag = comm.allgather(comm.rank + 1)
        assert ag == [1, 2, 3, 4]

    spmd(4, main)


def test_scatter():
    def main(comm):
        objs = [f"item{i}" for i in range(3)] if comm.rank == 0 else None
        got = comm.scatter(objs, root=0)
        assert got == f"item{comm.rank}"

    spmd(3, main)


def test_scatter_wrong_length_raises():
    def main(comm):
        if comm.rank == 0:
            with pytest.raises(ArgumentError):
                comm.scatter(["only-one"], root=0)
        # make other ranks do a matching no-op path: nothing to do
        return None

    spmd(2, main, watchdog_s=0.3)


def test_alltoall():
    def main(comm):
        sends = [(comm.rank, dst) for dst in range(comm.size)]
        got = comm.alltoall(sends)
        assert got == [(src, comm.rank) for src in range(comm.size)]

    spmd(4, main)


def test_reduce_sum_and_allreduce():
    def main(comm):
        v = np.array([comm.rank + 1, 2.0])
        r = comm.reduce(v, op="MPI_SUM", root=0)
        if comm.rank == 0:
            assert r.tolist() == [1 + 2 + 3, 6.0]
        else:
            assert r is None
        ar = comm.allreduce(v, op=mpi.MAX)
        assert ar.tolist() == [3, 2.0]

    spmd(3, main)


def test_reduce_shape_mismatch_raises():
    def main(comm):
        v = np.zeros(comm.rank + 1)
        comm.allreduce(v)

    with pytest.raises((ArgumentError, mpi.RankFailedError)):
        spmd(2, main)


def test_scan_exscan():
    def main(comm):
        v = np.array([comm.rank + 1], dtype="i8")
        inc = comm.scan(v)
        assert inc[0] == sum(range(1, comm.rank + 2))
        exc = comm.exscan(v)
        if comm.rank == 0:
            assert exc is None
        else:
            assert exc[0] == sum(range(1, comm.rank + 1))

    spmd(4, main)


def test_reduce_logical_ops():
    def main(comm):
        v = np.array([comm.rank % 2], dtype="i4")
        assert comm.allreduce(v, op=mpi.LOR)[0] == 1
        assert comm.allreduce(v, op=mpi.LAND)[0] == 0
        b = np.array([1 << comm.rank], dtype="i4")
        assert comm.allreduce(b, op=mpi.BOR)[0] == 0b1111

    spmd(4, main)


def test_mismatched_collectives_raise():
    def main(comm):
        if comm.rank == 0:
            comm.barrier()
        else:
            comm.allgather(1)

    with pytest.raises((InternalError, mpi.RankFailedError)):
        spmd(2, main)


def test_invalid_root_raises():
    def main(comm):
        with pytest.raises(RankError):
            comm.bcast_obj(None, root=99)

    spmd(2, main)


# ---------------------------------------------------------------------------
# communicator management
# ---------------------------------------------------------------------------


def test_dup_isolates_p2p():
    def main(comm):
        dup = comm.dup()
        assert dup.context_id != comm.context_id
        if comm.rank == 0:
            comm.send("on-comm", dest=1, tag=1)
            dup.send("on-dup", dest=1, tag=1)
        else:
            obj, _ = dup.recv(source=0, tag=1)
            assert obj == "on-dup"
            obj, _ = comm.recv(source=0, tag=1)
            assert obj == "on-comm"

    spmd(2, main)


def test_split_by_parity():
    def main(comm):
        sub = comm.split(color=comm.rank % 2, key=-comm.rank)
        assert sub.size == 2
        # key ordering: higher original rank first (key = -rank)
        expected_world = sorted(
            [r for r in range(4) if r % 2 == comm.rank % 2], reverse=True
        )
        assert list(sub.group.members) == expected_world
        total = sub.allreduce(np.array([comm.rank]))
        assert total[0] == sum(expected_world)

    spmd(4, main)


def test_split_undefined_color():
    def main(comm):
        sub = comm.split(color=0 if comm.rank == 0 else -1)
        if comm.rank == 0:
            assert sub is not None and sub.size == 1
        else:
            assert sub is None

    spmd(3, main)


def test_comm_create_subgroup():
    def main(comm):
        grp = comm.group.incl([1, 2])
        sub = comm.create(grp)
        if comm.rank in (1, 2):
            assert sub is not None
            assert sub.size == 2
            assert sub.rank == comm.rank - 1
        else:
            assert sub is None

    spmd(4, main)


def test_rank_outside_subcomm_raises():
    def main(comm):
        sub = comm.split(color=0 if comm.rank < 2 else -1)
        if comm.rank >= 2:
            assert sub is None
        else:
            assert sub.rank == comm.rank

    spmd(4, main)


# ---------------------------------------------------------------------------
# intercommunicators
# ---------------------------------------------------------------------------


def test_intercomm_create_and_p2p():
    def main(comm):
        half = comm.split(color=comm.rank // 2)
        # leaders are world ranks 0 and 2 (= bridge ranks 0 and 2)
        remote_leader = 2 if comm.rank < 2 else 0
        inter = half.create_intercomm(0, comm, remote_leader, tag=99)
        assert inter.size == 2 and inter.remote_size == 2
        # exchange: local rank i <-> remote rank i
        inter.send(("hello", comm.rank), dest=inter.rank, tag=5)
        (msg, src_world), st = inter.recv(source=inter.rank, tag=5)
        assert msg == "hello"
        assert st.source == inter.rank

    spmd(4, main)


def test_intercomm_merge_order():
    def main(comm):
        half = comm.split(color=comm.rank // 2)
        remote_leader = 2 if comm.rank < 2 else 0
        inter = half.create_intercomm(0, comm, remote_leader, tag=7)
        merged = inter.merge(high=(comm.rank >= 2))
        assert merged.size == 4
        # low group (world 0,1) must come first
        assert list(merged.group.members) == [0, 1, 2, 3]
        total = merged.allreduce(np.array([1]))
        assert total[0] == 4

    spmd(4, main)
