"""Unit and property tests for the MPI derived-datatype engine."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.mpi import datatypes as dt
from repro.mpi.errors import ArgumentError, DatatypeError


# ---------------------------------------------------------------------------
# predefined types
# ---------------------------------------------------------------------------


def test_predefined_sizes():
    assert dt.BYTE.size == 1
    assert dt.INT.size == 4
    assert dt.LONG.size == 8
    assert dt.FLOAT.size == 4
    assert dt.DOUBLE.size == 8


def test_predefined_are_committed():
    assert dt.DOUBLE.committed
    assert dt.DOUBLE.is_predefined
    sm = dt.DOUBLE.segment_map()
    assert sm.nsegments == 1
    assert sm.total_bytes == 8


def test_from_numpy_dtype_roundtrip():
    assert dt.from_numpy_dtype("f8") is dt.DOUBLE
    assert dt.from_numpy_dtype(np.int32) is dt.INT
    with pytest.raises(DatatypeError):
        dt.from_numpy_dtype("c16")


def test_predefined_replication_coalesces():
    sm = dt.DOUBLE.segment_map(count=10)
    assert sm.nsegments == 1
    assert sm.total_bytes == 80


# ---------------------------------------------------------------------------
# constructors
# ---------------------------------------------------------------------------


def test_contiguous():
    t = dt.contiguous(5, dt.INT).commit()
    assert t.size == 20
    assert t.extent == 20
    sm = t.segment_map()
    assert sm.nsegments == 1


def test_uncommitted_derived_type_raises():
    t = dt.contiguous(5, dt.INT)
    with pytest.raises(DatatypeError):
        t.segment_map()


def test_free_resets_commit():
    t = dt.contiguous(5, dt.INT).commit()
    t.free()
    with pytest.raises(DatatypeError):
        t.segment_map()
    t.commit()
    assert t.segment_map().total_bytes == 20


def test_vector_layout():
    # 3 blocks of 2 ints, stride 4 ints
    t = dt.vector(3, 2, 4, dt.INT).commit()
    sm = t.segment_map()
    assert sm.nsegments == 3
    assert sm.offsets.tolist() == [0, 16, 32]
    assert sm.lengths.tolist() == [8, 8, 8]
    assert t.size == 24
    assert t.extent == 2 * 16 + 8


def test_vector_stride_equals_blocklength_coalesces():
    t = dt.vector(4, 3, 3, dt.DOUBLE).commit()
    sm = t.segment_map()
    assert sm.nsegments == 1
    assert sm.total_bytes == 96


def test_hvector_byte_stride():
    t = dt.hvector(2, 1, 10, dt.INT).commit()
    sm = t.segment_map()
    assert sm.offsets.tolist() == [0, 10]


def test_indexed_layout():
    t = dt.indexed([2, 1], [0, 5], dt.INT).commit()
    sm = t.segment_map()
    assert sm.offsets.tolist() == [0, 20]
    assert sm.lengths.tolist() == [8, 4]
    assert t.size == 12


def test_indexed_block():
    t = dt.indexed_block(2, [0, 4, 8], dt.INT).commit()
    sm = t.segment_map()
    assert sm.nsegments == 3
    assert all(l == 8 for l in sm.lengths.tolist())


def test_indexed_mismatched_args_raise():
    with pytest.raises(ArgumentError):
        dt.indexed([1, 2], [0], dt.INT)


def test_indexed_zero_blocks():
    t = dt.indexed([], [], dt.INT).commit()
    assert t.size == 0
    assert t.segment_map().nsegments == 0


def test_subarray_2d():
    # 4x6 array of doubles, take the 2x3 patch at (1, 2)
    t = dt.subarray([4, 6], [2, 3], [1, 2], dt.DOUBLE).commit()
    sm = t.segment_map()
    assert t.size == 6 * 8
    assert sm.nsegments == 2  # two rows of 3 doubles
    assert sm.offsets.tolist() == [(1 * 6 + 2) * 8, (2 * 6 + 2) * 8]
    assert sm.lengths.tolist() == [24, 24]


def test_subarray_full_width_coalesces():
    # patch spans full fastest dimension AND rows are adjacent
    t = dt.subarray([4, 6], [2, 6], [1, 0], dt.DOUBLE).commit()
    assert t.segment_map().nsegments == 1


def test_subarray_3d_matches_numpy():
    sizes, subsizes, starts = [3, 4, 5], [2, 2, 3], [1, 1, 1]
    t = dt.subarray(sizes, subsizes, starts, dt.INT).commit()
    arr = np.arange(np.prod(sizes), dtype="i4").reshape(sizes)
    packed = t.pack(arr.reshape(-1).view(np.uint8)).view("i4")
    expected = arr[1:3, 1:3, 1:4].reshape(-1)
    np.testing.assert_array_equal(packed, expected)


def test_subarray_out_of_bounds_raises():
    with pytest.raises(ArgumentError):
        dt.subarray([4, 4], [2, 2], [3, 0], dt.INT)


def test_subarray_1d():
    t = dt.subarray([10], [4], [3], dt.DOUBLE).commit()
    sm = t.segment_map()
    assert sm.offsets.tolist() == [24]
    assert sm.lengths.tolist() == [32]


def test_nested_types():
    inner = dt.vector(2, 1, 2, dt.INT).commit()
    outer = dt.contiguous(3, inner).commit()
    assert outer.size == 3 * inner.size
    sm = outer.segment_map()
    assert sm.total_bytes == outer.size


# ---------------------------------------------------------------------------
# pack / unpack
# ---------------------------------------------------------------------------


def test_pack_unpack_roundtrip_indexed():
    buf = np.arange(32, dtype="i4")
    t = dt.indexed([3, 2, 1], [0, 8, 20], dt.INT).commit()
    packed = t.pack(buf.view(np.uint8)).view("i4")
    np.testing.assert_array_equal(packed, [0, 1, 2, 8, 9, 20])
    dest = np.zeros(32, dtype="i4")
    t.unpack(dest.view(np.uint8), packed.view(np.uint8))
    assert dest[0:3].tolist() == [0, 1, 2]
    assert dest[8:10].tolist() == [8, 9]
    assert dest[20] == 20
    assert dest[3] == 0  # untouched gaps


def test_pack_out_of_bounds_raises():
    buf = np.zeros(4, dtype="i4")
    t = dt.indexed([1], [10], dt.INT).commit()
    with pytest.raises(ArgumentError):
        t.pack(buf.view(np.uint8))


def test_unpack_wrong_length_raises():
    buf = np.zeros(16, dtype=np.uint8)
    t = dt.contiguous(2, dt.INT).commit()
    with pytest.raises(ArgumentError):
        t.unpack(buf, np.zeros(3, dtype=np.uint8))


# ---------------------------------------------------------------------------
# SegmentMap behaviour
# ---------------------------------------------------------------------------


def test_segment_map_shift():
    sm = dt.SegmentMap(np.array([0, 16]), np.array([8, 8])).shifted(100)
    assert sm.offsets.tolist() == [100, 116]


def test_segment_map_overlap_detection():
    sm = dt.SegmentMap(np.array([0, 4]), np.array([8, 8]))
    assert sm.overlaps_self()
    sm2 = dt.SegmentMap(np.array([0, 8]), np.array([8, 8]))
    assert not sm2.overlaps_self()


def test_segment_map_rejects_bad_shape():
    with pytest.raises(ArgumentError):
        dt.SegmentMap(np.array([[0]]), np.array([[1]]))


# ---------------------------------------------------------------------------
# property-based tests
# ---------------------------------------------------------------------------


@settings(max_examples=60, deadline=None)
@given(
    sizes=st.lists(st.integers(1, 6), min_size=1, max_size=3),
    data=st.data(),
)
def test_subarray_pack_always_matches_numpy_slicing(sizes, data):
    """For any n-D patch, datatype packing equals NumPy fancy slicing."""
    subsizes, starts = [], []
    for s in sizes:
        ss = data.draw(st.integers(1, s))
        subsizes.append(ss)
        starts.append(data.draw(st.integers(0, s - ss)))
    t = dt.subarray(sizes, subsizes, starts, dt.INT).commit()
    arr = np.arange(np.prod(sizes), dtype="i4").reshape(sizes)
    packed = t.pack(arr.reshape(-1).view(np.uint8)).view("i4")
    slices = tuple(slice(st_, st_ + ss) for st_, ss in zip(starts, subsizes))
    np.testing.assert_array_equal(packed, arr[slices].reshape(-1))


@settings(max_examples=60, deadline=None)
@given(
    blocks=st.lists(
        st.tuples(st.integers(0, 4), st.integers(0, 40)), min_size=0, max_size=8
    )
)
def test_indexed_size_and_roundtrip(blocks):
    """indexed type size == sum of blocks; pack→unpack is identity on
    covered elements when displacements do not overlap."""
    # lay blocks out without overlap: displacements strictly increasing
    # with enough room for each block
    disps, cursor = [], 0
    for bl, gap in blocks:
        cursor += gap
        disps.append(cursor)
        cursor += bl
    bls = [bl for bl, _ in blocks]
    t = dt.indexed(bls, disps, dt.INT).commit()
    assert t.size == sum(bls) * 4
    n = max(cursor, 1)
    buf = np.arange(n, dtype="i4")
    packed = t.pack(buf.view(np.uint8))
    out = np.full(n, -1, dtype="i4")
    t.unpack(out.view(np.uint8), packed)
    for bl, d in zip(bls, disps):
        np.testing.assert_array_equal(out[d : d + bl], buf[d : d + bl])


@settings(max_examples=40, deadline=None)
@given(
    count=st.integers(0, 5),
    blocklength=st.integers(0, 4),
    stride=st.integers(0, 8),
)
def test_vector_size_invariant(count, blocklength, stride):
    t = dt.vector(count, blocklength, max(stride, blocklength), dt.DOUBLE).commit()
    assert t.size == count * blocklength * 8
    assert t.segment_map().total_bytes == t.size


@settings(max_examples=40, deadline=None)
@given(st.lists(st.tuples(st.integers(0, 1000), st.integers(1, 50)), max_size=20))
def test_coalesced_preserves_bytes(pairs):
    offs = np.array([p[0] for p in pairs], dtype=np.int64)
    lens = np.array([p[1] for p in pairs], dtype=np.int64)
    sm = dt.SegmentMap(offs, lens)
    co = sm.coalesced()
    assert co.total_bytes == sm.total_bytes
    assert co.nsegments <= max(sm.nsegments, 1)


# ---------------------------------------------------------------------------
# struct types
# ---------------------------------------------------------------------------


def test_struct_homogeneous():
    t = dt.struct_type([2, 1], [0, 16], [dt.INT, dt.INT]).commit()
    assert t.size == 12
    assert t.base == np.dtype("i4")
    sm = t.segment_map()
    assert sm.offsets.tolist() == [0, 16]
    assert sm.lengths.tolist() == [8, 4]


def test_struct_heterogeneous_pack():
    # an {int32, double} record at displacements 0 and 8
    t = dt.struct_type([1, 1], [0, 8], [dt.INT, dt.DOUBLE]).commit()
    assert t.size == 12
    assert t.extent == 16
    rec = np.zeros(16, dtype=np.uint8)
    rec[:4] = np.array([7], dtype="i4").view(np.uint8)
    rec[8:16] = np.array([2.5], dtype="f8").view(np.uint8)
    packed = t.pack(rec)
    assert packed[:4].view("i4")[0] == 7
    assert packed[4:12].view("f8")[0] == 2.5


def test_struct_heterogeneous_has_no_base():
    t = dt.struct_type([1, 1], [0, 8], [dt.INT, dt.DOUBLE]).commit()
    assert t.base.itemsize == 0  # no uniform predefined leaf


def test_struct_arg_validation():
    with pytest.raises(ArgumentError):
        dt.struct_type([1], [0, 8], [dt.INT])
    with pytest.raises(ArgumentError):
        dt.struct_type([-1], [0], [dt.INT])


def test_struct_empty():
    t = dt.struct_type([], [], []).commit()
    assert t.size == 0 and t.segment_map().nsegments == 0


def test_struct_replication_uses_extent():
    t = dt.struct_type([1], [0], [dt.INT])
    # widen the extent by placing the block at displacement 4
    t2 = dt.struct_type([1], [4], [dt.INT]).commit()
    sm = t2.segment_map(count=2)
    assert sm.offsets.tolist() == [4, 12]


def test_struct_nested_in_contiguous():
    inner = dt.struct_type([1, 1], [0, 8], [dt.INT, dt.INT]).commit()
    outer = dt.contiguous(3, inner).commit()
    assert outer.size == 3 * 8
    assert outer.segment_map().total_bytes == 24


# ---------------------------------------------------------------------------
# vectorized pack/unpack vs the retained naive reference
# ---------------------------------------------------------------------------


def _reference_equivalence(t: dt.Datatype, count: int, seed: int) -> None:
    """Assert vectorized pack/unpack are byte-identical to the reference."""
    t.commit()
    segmap = t.segment_map(count)
    lo, hi = segmap.bounds()
    assert lo >= 0
    rng = np.random.default_rng(seed)
    buf = rng.integers(0, 256, size=max(hi, 1), dtype=np.uint8)
    # pack: gather out of a scrambled buffer
    np.testing.assert_array_equal(
        t.pack(buf, count), dt.pack_reference(t, buf, count)
    )
    # unpack: scatter random wire bytes into two identically-scrambled
    # buffers; the whole buffer must match, including untouched gaps and
    # traversal-order overwrites of overlapping segments
    data = rng.integers(0, 256, size=segmap.total_bytes, dtype=np.uint8)
    out_vec = buf.copy()
    out_ref = buf.copy()
    t.unpack(out_vec, data, count)
    dt.unpack_reference(t, out_ref, data, count)
    np.testing.assert_array_equal(out_vec, out_ref)


@settings(max_examples=80, deadline=None)
@given(
    blocks=st.lists(
        st.tuples(st.integers(0, 5), st.integers(0, 60)), min_size=0, max_size=10
    ),
    count=st.integers(1, 3),
    seed=st.integers(0, 2**31),
)
def test_hindexed_pack_unpack_matches_reference(blocks, count, seed):
    """Arbitrary byte displacements: overlapping and zero-length segments
    included (displacements are unconstrained, blocklengths may be 0)."""
    bls = [b for b, _ in blocks]
    disps = [d for _, d in blocks]
    t = dt.hindexed(bls, disps, dt.INT)
    _reference_equivalence(t, count, seed)


@settings(max_examples=60, deadline=None)
@given(
    count=st.integers(0, 6),
    blocklength=st.integers(0, 5),
    stride=st.integers(0, 12),
    reps=st.integers(1, 3),
    seed=st.integers(0, 2**31),
)
def test_vector_pack_unpack_matches_reference(count, blocklength, stride, reps, seed):
    """Vector types — including stride < blocklength, where successive
    blocks overlap and unpack order matters."""
    t = dt.vector(count, blocklength, stride, dt.SHORT)
    _reference_equivalence(t, reps, seed)


@settings(max_examples=60, deadline=None)
@given(
    sizes=st.lists(st.integers(1, 6), min_size=1, max_size=3),
    data=st.data(),
    seed=st.integers(0, 2**31),
)
def test_subarray_pack_unpack_matches_reference(sizes, data, seed):
    subsizes, starts = [], []
    for s in sizes:
        ss = data.draw(st.integers(0, s))
        subsizes.append(ss)
        starts.append(data.draw(st.integers(0, s - ss)))
    t = dt.subarray(sizes, subsizes, starts, dt.DOUBLE)
    _reference_equivalence(t, data.draw(st.integers(1, 2)), seed)


def test_uniform_arithmetic_gather_scatter_fast_path():
    """The strided-view fast path: equally spaced uniform segments."""
    t = dt.hindexed([8] * 100, [i * 32 for i in range(100)], dt.BYTE).commit()
    sm = t.segment_map()
    assert sm.uniform_seg_len == 8
    buf = (np.arange(100 * 32, dtype=np.int64) % 256).astype(np.uint8)
    np.testing.assert_array_equal(t.pack(buf), dt.pack_reference(t, buf))
    data = np.arange(800, dtype=np.int64).astype(np.uint8)
    a, b = buf.copy(), buf.copy()
    t.unpack(a, data)
    dt.unpack_reference(t, b, data)
    np.testing.assert_array_equal(a, b)


def test_overlapping_arithmetic_unpack_preserves_traversal_order():
    """step < segment length: the strided store is illegal, scatter must
    fall back to traversal-order writes (later segments win)."""
    t = dt.hindexed([8] * 10, [i * 4 for i in range(10)], dt.BYTE).commit()
    sm = t.segment_map()
    assert sm.overlaps_self()
    buf_vec = np.zeros(64, dtype=np.uint8)
    buf_ref = np.zeros(64, dtype=np.uint8)
    data = np.arange(80, dtype=np.int64).astype(np.uint8)
    t.unpack(buf_vec, data)
    dt.unpack_reference(t, buf_ref, data)
    np.testing.assert_array_equal(buf_vec, buf_ref)


def test_zero_copy_single_segment_pack():
    t = dt.contiguous(16, dt.BYTE).commit()
    buf = np.arange(16, dtype=np.uint8)
    view = t.pack(buf, copy=False)
    assert view.base is not None and np.shares_memory(view, buf)
    copied = t.pack(buf)  # default stays a fresh array
    assert not np.shares_memory(copied, buf)
