"""Error-path tests for :mod:`repro.mpi.errors`.

The simulated runtime behaves like ``MPI_ERRORS_RETURN`` lifted into
Python exceptions: every error carries a symbolic ``MPI_ERR_*`` class and
formats as ``[{error_class}] {message}``.  These tests pin the hierarchy,
the formatting contract, a representative raise-site for each class, and
the invariant the sanitizer's structured exceptions rely on: each
``*ViolationError`` is-a plain MPI error with the same ``error_class``.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.mpi import errors
from repro.mpi.errors import (
    ArgumentError,
    CommError,
    CommRevokedError,
    CountError,
    DatatypeError,
    GroupError,
    InternalError,
    MPIError,
    OpTimeoutError,
    ProgressDeadlockError,
    RankError,
    RankKilledError,
    RetriesExhausted,
    RMAConflictError,
    RMARangeError,
    RMASyncError,
    TagError,
    TargetFailedError,
    TruncationError,
    WinError,
)
from repro.mpi.runtime import RankFailedError, Runtime
from repro.mpi.window import Win
from repro.sanitizer.violations import (
    ConflictViolationError,
    ModeViolationError,
    RangeViolationError,
    RmaViolationError,
    SyncViolationError,
)

EXPECTED_CLASSES = {
    MPIError: "MPI_ERR_OTHER",
    ArgumentError: "MPI_ERR_ARG",
    RankError: "MPI_ERR_RANK",
    CountError: "MPI_ERR_COUNT",
    DatatypeError: "MPI_ERR_TYPE",
    TruncationError: "MPI_ERR_TRUNCATE",
    CommError: "MPI_ERR_COMM",
    GroupError: "MPI_ERR_GROUP",
    TagError: "MPI_ERR_TAG",
    WinError: "MPI_ERR_WIN",
    RMASyncError: "MPI_ERR_RMA_SYNC",
    RMAConflictError: "MPI_ERR_RMA_CONFLICT",
    RMARangeError: "MPI_ERR_RMA_RANGE",
    ProgressDeadlockError: "MPI_ERR_PENDING",
    InternalError: "MPI_ERR_INTERN",
    TargetFailedError: "MPI_ERR_PROC_FAILED",
    RankKilledError: "MPI_ERR_PROC_FAILED",
    OpTimeoutError: "MPI_ERR_PENDING",
    CommRevokedError: "MPI_ERR_REVOKED",
    RetriesExhausted: "MPI_ERR_PENDING",
}


def test_every_exported_error_has_its_mpi_class():
    for cls, symbolic in EXPECTED_CLASSES.items():
        assert cls.error_class == symbolic
        assert issubclass(cls, MPIError)
    # __all__ is exactly the public hierarchy
    assert set(errors.__all__) == {c.__name__ for c in EXPECTED_CLASSES}


def test_message_formatting_contract():
    e = ArgumentError("bad displacement")
    assert str(e) == "[MPI_ERR_ARG] bad displacement"
    assert e.message == "bad displacement"
    # empty message degrades to the bare symbolic class
    assert str(RMASyncError()) == "MPI_ERR_RMA_SYNC"
    assert RMASyncError().message == ""


def test_rank_failed_is_a_deadlock_error():
    # a rank killed by a peer's failure reports through the same channel
    # the watchdog uses, so callers need only catch ProgressDeadlockError
    assert issubclass(RankFailedError, ProgressDeadlockError)
    assert RankFailedError("x").error_class == "MPI_ERR_PENDING"


def test_fault_errors_form_a_typed_subtree():
    # quarantine/recovery diagnoses are catchable as one family
    assert issubclass(RankKilledError, TargetFailedError)
    from repro.armci.mutexes import MutexHolderFailed

    assert issubclass(MutexHolderFailed, TargetFailedError)
    e = MutexHolderFailed(mutex=2, host=1, dead_rank=3)
    assert (e.mutex, e.host, e.dead_rank) == (2, 1, 3)
    assert e.error_class == "MPI_ERR_PROC_FAILED"
    # a per-op timeout is retryable, not a process-failure verdict
    assert not issubclass(OpTimeoutError, TargetFailedError)
    # an exhausted transient-stall retry budget is a timeout verdict
    assert issubclass(RetriesExhausted, OpTimeoutError)
    # revocation (ULFM recovery) is its own verdict, not a process failure
    assert not issubclass(CommRevokedError, TargetFailedError)
    assert CommRevokedError("x").error_class == "MPI_ERR_REVOKED"


def test_violation_errors_keep_the_legacy_error_class():
    pairs = [
        (SyncViolationError, RMASyncError, "MPI_ERR_RMA_SYNC"),
        (ConflictViolationError, RMAConflictError, "MPI_ERR_RMA_CONFLICT"),
        (RangeViolationError, RMARangeError, "MPI_ERR_RMA_RANGE"),
        (ModeViolationError, ArgumentError, "MPI_ERR_ARG"),
    ]
    for structured, legacy, symbolic in pairs:
        assert issubclass(structured, legacy)
        assert issubclass(structured, RmaViolationError)
        assert structured.error_class == symbolic
    # the shared base adds no class of its own (the MRO supplies it)
    assert "error_class" not in vars(RmaViolationError)


# -- representative raise-sites ----------------------------------------------------


def _spmd(nproc, fn):
    return Runtime(nproc, watchdog_s=0.4).spmd(fn)


def test_unknown_lock_mode_is_an_argument_error():
    def body(comm):
        win, _ = Win.allocate(comm, 64)
        comm.barrier()
        if comm.rank == 0:
            win.lock(1, "MPI_LOCK_BOGUS")

    with pytest.raises(ArgumentError):
        _spmd(2, body)


def test_target_rank_out_of_range():
    def body(comm):
        win, _ = Win.allocate(comm, 64)
        comm.barrier()
        if comm.rank == 0:
            win.lock(5)

    with pytest.raises(RMARangeError):
        _spmd(2, body)


def test_op_outside_epoch_without_sanitizer_is_plain_sync_error():
    def body(comm):
        win, _ = Win.allocate(comm, 64)
        comm.barrier()
        if comm.rank == 0:
            # repro: lint-ignore[epoch] — the missing epoch is the point
            win.put(np.ones(8, dtype=np.uint8), 1)

    rt = Runtime(2, watchdog_s=0.4)
    rt.sanitizer = None  # force the plain path even under `pytest --sanitize`
    with pytest.raises(RMASyncError) as ei:
        rt.spmd(body)
    # no sanitizer installed: the window's own plain error, unstructured
    assert not isinstance(ei.value, RmaViolationError)
    assert ei.value.error_class == "MPI_ERR_RMA_SYNC"


def test_mpi2_window_rejects_mpi3_calls():
    def body(comm):
        win, _ = Win.allocate(comm, 64)  # mpi3=False: the paper's setting
        comm.barrier()
        if comm.rank == 0:
            win.lock_all()

    with pytest.raises(WinError) as ei:
        _spmd(2, body)
    assert "mpi3=True" in str(ei.value)


def test_operation_on_freed_window():
    def body(comm):
        win, _ = Win.allocate(comm, 64)
        win.free()
        win.lock(0)

    with pytest.raises(WinError):
        _spmd(2, body)


def test_watchdog_turns_a_real_hang_into_a_deadlock_error():
    def body(comm):
        if comm.rank == 0:
            comm.barrier()  # rank 1 never joins

    with pytest.raises(ProgressDeadlockError):
        _spmd(2, body)
