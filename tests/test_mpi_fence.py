"""Tests for active-target fence synchronisation (MPI_Win_fence, §III)."""

from __future__ import annotations

import numpy as np
import pytest

from repro import mpi
from repro.mpi.errors import RMAConflictError, RMASyncError

from conftest import spmd


def test_fence_put_get_cycle():
    def main(comm):
        local = np.zeros(8, dtype="f8")
        win = mpi.Win.create(comm, local)
        win.fence_sync()  # open the first access epoch
        right = (comm.rank + 1) % comm.size
        win.put(np.full(8, float(comm.rank)), right)
        win.fence_sync()  # completes the puts, opens the next epoch
        assert local[0] == float((comm.rank - 1) % comm.size)
        out = np.zeros(8)
        win.get(out, right)
        assert np.all(out == 0.0), "fence gets complete at the NEXT fence"
        win.fence_sync(end=True)
        # right's slab holds (right - 1) % size == our own rank
        assert np.all(out == float(comm.rank))
        win.free()

    spmd(4, main)


def test_ops_without_fence_raise():
    def main(comm):
        local = np.zeros(4, dtype="f8")
        win = mpi.Win.create(comm, local)
        with pytest.raises(RMASyncError):
            win.put(np.zeros(1), 0)
        win.free()

    spmd(2, main)


def test_ops_after_closing_fence_raise():
    def main(comm):
        local = np.zeros(4, dtype="f8")
        win = mpi.Win.create(comm, local)
        win.fence_sync()
        win.fence_sync(end=True)
        with pytest.raises(RMASyncError):
            win.put(np.zeros(1), 0)
        win.free()

    spmd(2, main)


def test_fence_and_lock_are_mutually_exclusive():
    def main(comm):
        local = np.zeros(4, dtype="f8")
        win = mpi.Win.create(comm, local)
        win.fence_sync()
        with pytest.raises(RMASyncError):
            win.lock(0)
        win.fence_sync(end=True)
        # and the other direction
        win.lock(0)
        with pytest.raises((RMASyncError, mpi.RankFailedError)):
            win.fence_sync()
        win.unlock(0)
        win.free()

    # the second fence attempt may kill the run collectively; accept both
    try:
        spmd(1, main, watchdog_s=0.4)
    except (RMASyncError, mpi.RankFailedError):
        pass


def test_fence_conflicts_detected_across_origins():
    """Two origins writing the same bytes within one fence epoch is the
    canonical erroneous active-target program; the checker catches it."""

    def main(comm):
        local = np.zeros(4, dtype="f8")
        win = mpi.Win.create(comm, local)
        win.fence_sync()
        if comm.rank == 0:
            win.put(np.ones(4), 1)
            comm.barrier()
            comm.barrier()
        else:
            comm.barrier()
            with pytest.raises(RMAConflictError):
                win.put(np.full(4, 2.0), 1)
            comm.barrier()
        win.fence_sync(end=True)
        win.free()

    spmd(2, main)


def test_fence_accumulates_merge():
    def main(comm):
        local = np.zeros(4, dtype="f8")
        win = mpi.Win.create(comm, local)
        win.fence_sync()
        win.accumulate(np.ones(4), 0, op="MPI_SUM")
        win.fence_sync(end=True)
        if comm.rank == 0:
            assert np.all(local == comm.size)
        win.free()

    spmd(4, main)


def test_free_inside_open_fence_epoch_raises():
    def main(comm):
        local = np.zeros(4, dtype="f8")
        win = mpi.Win.create(comm, local)
        win.fence_sync()
        with pytest.raises((RMASyncError, mpi.RankFailedError)):
            win.free()
        win.fence_sync(end=True)
        win.free()

    spmd(2, main)
