"""Unit + property tests for MPI group algebra (repro.mpi.group)."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.mpi.group import UNDEFINED, Group
from repro.mpi.errors import GroupError, RankError


def test_basic_queries():
    g = Group([3, 1, 4])
    assert g.size == 3
    assert g.world_rank(0) == 3
    assert g.world_rank(2) == 4
    assert g.rank_of_world(1) == 1
    assert g.rank_of_world(9) == UNDEFINED
    assert g.contains_world(4)
    assert list(g) == [3, 1, 4]
    assert len(g) == 3


def test_duplicate_and_negative_members_rejected():
    with pytest.raises(GroupError):
        Group([0, 1, 0])
    with pytest.raises(GroupError):
        Group([-1, 2])


def test_world_rank_out_of_range():
    g = Group([5, 6])
    with pytest.raises(RankError):
        g.world_rank(2)
    with pytest.raises(RankError):
        g.world_rank(-1)


def test_incl_excl():
    g = Group([10, 20, 30, 40])
    assert Group([20, 40]) == g.incl([1, 3])
    assert Group([10, 30]) == g.excl([1, 3])
    with pytest.raises(RankError):
        g.excl([7])
    # order matters for incl (MPI semantics)
    assert g.incl([3, 0]).members == (40, 10)


def test_union_preserves_mpi_order():
    a = Group([1, 2, 3])
    b = Group([3, 4, 1])
    u = a.union(b)
    assert u.members == (1, 2, 3, 4)  # a's members first, then new ones


def test_intersection_and_difference():
    a = Group([1, 2, 3, 4])
    b = Group([4, 2, 9])
    assert a.intersection(b).members == (2, 4)  # ordered as in a
    assert a.difference(b).members == (1, 3)
    assert b.difference(a).members == (9,)


def test_translate_ranks():
    a = Group([10, 20, 30])
    b = Group([30, 10])
    assert a.translate_ranks([0, 1, 2], b) == [1, UNDEFINED, 0]


def test_equality_and_hash():
    assert Group([1, 2]) == Group([1, 2])
    assert Group([1, 2]) != Group([2, 1])  # groups are ORDERED sets
    assert hash(Group([1, 2])) == hash(Group([1, 2]))


# ---------------------------------------------------------------------------
# algebraic properties
# ---------------------------------------------------------------------------

members = st.lists(st.integers(0, 30), unique=True, max_size=12)


@settings(max_examples=100, deadline=None)
@given(a=members, b=members)
def test_intersection_is_subset_of_both(a, b):
    ga, gb = Group(a), Group(b)
    inter = ga.intersection(gb)
    for w in inter:
        assert ga.contains_world(w) and gb.contains_world(w)
    # and contains everything common
    assert set(inter.members) == set(a) & set(b)


@settings(max_examples=100, deadline=None)
@given(a=members, b=members)
def test_union_covers_both_without_duplicates(a, b):
    u = Group(a).union(Group(b))
    assert set(u.members) == set(a) | set(b)
    assert len(u.members) == len(set(u.members))


@settings(max_examples=100, deadline=None)
@given(a=members, b=members)
def test_difference_disjoint_from_b(a, b):
    d = Group(a).difference(Group(b))
    assert set(d.members) == set(a) - set(b)


@settings(max_examples=100, deadline=None)
@given(a=members)
def test_translate_roundtrip_identity(a):
    g = Group(a)
    # translating every rank into the same group is the identity
    assert g.translate_ranks(list(range(g.size)), g) == list(range(g.size))


@settings(max_examples=60, deadline=None)
@given(a=st.lists(st.integers(0, 30), unique=True, min_size=1, max_size=12), data=st.data())
def test_incl_then_rank_lookup_consistent(a, data):
    g = Group(a)
    picks = data.draw(
        st.lists(st.integers(0, g.size - 1), unique=True, min_size=1, max_size=g.size)
    )
    sub = g.incl(picks)
    for new_rank, old_rank in enumerate(picks):
        assert sub.world_rank(new_rank) == g.world_rank(old_rank)
