"""Tests for two-sided messaging: matching, ordering, wildcards, errors."""

from __future__ import annotations

import numpy as np
import pytest

from repro import mpi
from repro.mpi.errors import TagError, TruncationError

from conftest import spmd


def test_basic_send_recv():
    def main(comm):
        if comm.rank == 0:
            comm.send(np.arange(8, dtype="f8"), dest=1, tag=3)
        elif comm.rank == 1:
            buf = np.zeros(8)
            st = comm.recv(buf, source=0, tag=3)
            assert st.source == 0 and st.tag == 3 and st.count == 64
            np.testing.assert_array_equal(buf, np.arange(8.0))

    spmd(2, main)


def test_object_mode_send_recv():
    def main(comm):
        if comm.rank == 0:
            comm.send({"k": [1, 2, 3]}, dest=1)
        elif comm.rank == 1:
            obj, st = comm.recv(source=0)
            assert obj == {"k": [1, 2, 3]}
            assert st.count == 0

    spmd(2, main)


def test_send_buffer_is_copied_at_send_time():
    """Eager protocol: mutating the send buffer after send() is safe."""

    def main(comm):
        if comm.rank == 0:
            data = np.full(4, 7, dtype="i8")
            comm.send(data, dest=1)
            data[:] = -1  # must not affect the message
            comm.barrier()
        else:
            comm.barrier()
            buf = np.zeros(4, dtype="i8")
            comm.recv(buf, source=0)
            assert buf.tolist() == [7, 7, 7, 7]

    spmd(2, main)


def test_nonovertaking_order_same_pair():
    def main(comm):
        if comm.rank == 0:
            for i in range(10):
                comm.send(np.array([i]), dest=1, tag=9)
        else:
            for i in range(10):
                buf = np.zeros(1, dtype="i8")
                comm.recv(buf, source=0, tag=9)
                assert buf[0] == i

    spmd(2, main)


def test_tag_selectivity():
    def main(comm):
        if comm.rank == 0:
            comm.send(np.array([1]), dest=1, tag=10)
            comm.send(np.array([2]), dest=1, tag=20)
        else:
            buf = np.zeros(1, dtype="i8")
            comm.recv(buf, source=0, tag=20)
            assert buf[0] == 2
            comm.recv(buf, source=0, tag=10)
            assert buf[0] == 1

    spmd(2, main)


def test_wildcard_source_and_tag():
    def main(comm):
        if comm.rank == 3:
            seen = set()
            for _ in range(3):
                obj, st = comm.recv(source=mpi.ANY_SOURCE, tag=mpi.ANY_TAG)
                seen.add(st.source)
                assert obj == st.source
            assert seen == {0, 1, 2}
        else:
            comm.send(comm.rank, dest=3, tag=comm.rank + 1)

    spmd(4, main)


def test_irecv_wait_blocks_until_matched():
    def main(comm):
        if comm.rank == 0:
            req = comm.irecv(source=1, tag=7)
            done, _ = req.test()
            assert not done
            comm.barrier()
            obj, st = (lambda s: (s.payload, s))(req.wait())
            assert obj == "late"
        else:
            comm.barrier()
            comm.send("late", dest=0, tag=7)

    spmd(2, main)


def test_isend_completes_immediately():
    def main(comm):
        if comm.rank == 0:
            req = comm.isend(np.zeros(4), dest=1)
            done, _ = req.test()
            assert done
        else:
            buf = np.zeros(4)
            comm.recv(buf, source=0)

    spmd(2, main)


def test_sendrecv_exchange_no_deadlock():
    def main(comm):
        partner = 1 - comm.rank
        buf = np.zeros(1, dtype="i8")
        comm.sendrecv(
            np.array([comm.rank], dtype="i8"), dest=partner, recvbuf=buf, source=partner
        )
        assert buf[0] == partner

    spmd(2, main)


def test_truncation_raises():
    def main(comm):
        if comm.rank == 0:
            comm.send(np.zeros(100), dest=1)
        else:
            buf = np.zeros(2)
            with pytest.raises(TruncationError):
                comm.recv(buf, source=0)

    spmd(2, main)


def test_negative_tag_raises():
    def main(comm):
        if comm.rank == 0:
            with pytest.raises(TagError):
                comm.send(np.zeros(1), dest=1, tag=-3)

    spmd(2, main)


def test_iprobe():
    def main(comm):
        if comm.rank == 0:
            assert comm.iprobe(source=1) is None
            comm.barrier()
            # wait until the message is visible
            st = None
            while st is None:
                st = comm.iprobe(source=1, tag=4)
            assert st.count == 8
            buf = np.zeros(1, dtype="f8")
            comm.recv(buf, source=1, tag=4)
        else:
            comm.barrier()
            comm.send(np.array([2.5]), dest=0, tag=4)

    spmd(2, main)


def test_recv_blocking_deadlock_detected():
    """Two ranks both receiving first is a genuine deadlock -> watchdog."""

    def main(comm):
        buf = np.zeros(1)
        comm.recv(buf, source=1 - comm.rank, tag=0)

    with pytest.raises(mpi.ProgressDeadlockError):
        spmd(2, main, watchdog_s=0.2)


def test_exception_in_one_rank_propagates():
    def main(comm):
        if comm.rank == 1:
            raise ValueError("boom")
        buf = np.zeros(1)
        comm.recv(buf, source=1)  # would block forever

    with pytest.raises(ValueError, match="boom"):
        spmd(2, main, watchdog_s=0.5)
