"""Tests for the SPMD runtime itself: scheduling, clocks, failure modes."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import mpi
from repro.mpi.errors import InternalError, RMAConflictError
from repro.mpi.runtime import Runtime, current_proc, spmd_run
from repro.simtime import MPITimingPolicy, PathModel

from conftest import spmd


def test_current_proc_outside_spmd_raises():
    with pytest.raises(InternalError):
        current_proc()


def test_spmd_returns_per_rank_results():
    assert spmd_run(5, lambda comm: comm.rank * 10) == [0, 10, 20, 30, 40]


def test_runtime_requires_positive_nproc():
    with pytest.raises(InternalError):
        Runtime(0)


def test_single_rank_runtime():
    def main(comm):
        assert comm.size == 1 and comm.rank == 0
        comm.barrier()
        assert comm.allgather("x") == ["x"]
        return "done"

    assert spmd(1, main) == ["done"]


def test_exception_propagates_original_type():
    class Boom(RuntimeError):
        pass

    def main(comm):
        if comm.rank == 2:
            raise Boom("rank 2 died")
        comm.barrier()

    with pytest.raises(Boom):
        spmd(3, main, watchdog_s=0.3)


def test_clocks_start_at_zero_and_accumulate():
    rt = Runtime(2)
    path = PathModel(
        name="t", latency=1e-6, bw_small=1e9, bw_large=1e9,
        bw_threshold=1 << 20, acc_rate=1e9, seg_overhead=0.0, pack_rate=1e9,
    )
    rt.timing = MPITimingPolicy(path)

    def main(comm):
        if comm.rank == 0:
            comm.send(np.zeros(1000, dtype=np.uint8), dest=1)
        else:
            comm.recv(np.zeros(1000, dtype=np.uint8), source=0)
        return current_proc().clock.now

    times = rt.spmd(main)
    # sender: latency + 1000/1e9; receiver charges on recv completion
    assert times[0] == pytest.approx(1e-6 + 1e-6)
    assert times[1] == pytest.approx(1e-6 + 1e-6)
    assert rt.max_clock() == max(times)


def test_no_timing_policy_means_zero_clocks():
    def main(comm):
        comm.barrier()
        comm.allreduce(np.array([1.0]))
        return current_proc().clock.now

    assert spmd(3, main) == [0.0, 0.0, 0.0]


def test_barrier_synchronises_clocks():
    rt = Runtime(2)
    path = PathModel(
        name="t", latency=1e-3, bw_small=1e9, bw_large=1e9,
        bw_threshold=1, acc_rate=1e9, seg_overhead=0.0, pack_rate=1e9,
    )
    rt.timing = MPITimingPolicy(path)

    def main(comm):
        if comm.rank == 0:
            # rank 0 does extra charged work before the barrier
            for _ in range(5):
                comm.send(b"", dest=1, tag=1)
        else:
            for _ in range(5):
                comm.recv(source=0, tag=1)
        comm.barrier()
        return current_proc().clock.now

    times = rt.spmd(main)
    assert times[0] == pytest.approx(times[1])


def test_shared_state_dict_is_per_runtime():
    r1, r2 = Runtime(1), Runtime(1)
    r1.shared["k"] = 1
    assert "k" not in r2.shared


@settings(max_examples=15, deadline=None)
@given(nproc=st.integers(1, 6), seed=st.integers(0, 1000))
def test_collectives_correct_for_any_nproc(nproc, seed):
    """Property: reductions match NumPy for arbitrary rank counts."""
    rng = np.random.default_rng(seed)
    values = rng.integers(-100, 100, size=nproc)

    def main(comm):
        v = np.array([values[comm.rank]], dtype="i8")
        total = comm.allreduce(v, op="MPI_SUM")
        lo = comm.allreduce(v, op="MPI_MIN")
        hi = comm.allreduce(v, op="MPI_MAX")
        return int(total[0]), int(lo[0]), int(hi[0])

    results = spmd(nproc, main)
    expect = (int(values.sum()), int(values.min()), int(values.max()))
    assert all(r == expect for r in results)


def test_watchdog_does_not_fire_on_slow_but_live_rank():
    """One rank computing while others wait must NOT trip the watchdog."""

    def main(comm):
        if comm.rank == 0:
            # stay busy (not blocked) well past the watchdog interval
            import time

            deadline = time.monotonic() + 0.5
            x = 0
            while time.monotonic() < deadline:
                x += 1
        comm.barrier()
        return True

    assert all(spmd(3, main, watchdog_s=0.15))


def test_strict_error_in_epoch_propagates_cleanly():
    """An RMA conflict on one rank fails the whole run with that error."""

    def main(comm):
        local = np.zeros(8)
        win = mpi.Win.create(comm, local)
        if comm.rank == 0:
            win.lock(1)
            win.put(np.ones(2), 1)
            win.put(np.ones(2), 1)  # conflict -> raises
            win.unlock(1)
        comm.barrier()

    with pytest.raises((RMAConflictError, mpi.RankFailedError)):
        spmd(2, main, watchdog_s=0.3)
