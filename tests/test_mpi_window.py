"""Tests for MPI RMA windows: the strict MPI-2 semantics ARMCI-MPI targets.

These tests pin exactly the rules §III and §V of the paper design around:
epochs, one-lock-per-window, conflicting-access errors, deferred get
delivery, exclusive-lock DLA, and the MPI-3 gating.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import mpi
from repro.mpi.errors import (
    RMAConflictError,
    RMARangeError,
    RMASyncError,
    WinError,
)

from conftest import spmd


def _win(comm, n_doubles=16, **kw):
    local = np.zeros(n_doubles, dtype="f8")
    win = mpi.Win.create(comm, local, **kw)
    return win, local


# ---------------------------------------------------------------------------
# basic data movement
# ---------------------------------------------------------------------------


def test_put_get_roundtrip():
    def main(comm):
        win, local = _win(comm)
        if comm.rank == 1:
            win.lock(0)
            win.put(np.arange(16.0), 0)
            win.unlock(0)
        comm.barrier()
        if comm.rank == 0:
            assert local[5] == 5.0
        out = np.zeros(16)
        win.lock(0, mpi.LOCK_SHARED)
        win.get(out, 0)
        win.unlock(0)
        np.testing.assert_array_equal(out, np.arange(16.0))
        win.free()

    spmd(3, main)


def test_get_not_delivered_until_unlock():
    def main(comm):
        win, local = _win(comm)
        if comm.rank == 0:
            local[:] = 9.0
        comm.barrier()
        if comm.rank == 1:
            out = np.zeros(16)
            win.lock(0)
            win.get(out, 0)
            assert np.all(out == 0.0), "get must not complete before unlock"
            win.unlock(0)
            assert np.all(out == 9.0)
        comm.barrier()
        win.free()

    spmd(2, main)


def test_accumulate_sum():
    def main(comm):
        win, local = _win(comm, 4)
        comm.barrier()
        win.lock(0)
        win.accumulate(np.full(4, 1.5), 0, op="MPI_SUM")
        win.unlock(0)
        comm.barrier()
        if comm.rank == 0:
            assert np.all(local == 1.5 * comm.size)
        win.free()

    spmd(4, main)


def test_accumulate_replace_and_min():
    def main(comm):
        win, local = _win(comm, 2)
        if comm.rank == 0:
            local[:] = [10.0, 10.0]
        comm.barrier()
        if comm.rank == 1:
            win.lock(0)
            win.accumulate(np.array([3.0, 99.0]), 0, op=mpi.MIN)
            win.unlock(0)
            win.lock(0)
            win.accumulate(np.array([7.0, 7.0]), 0, op=mpi.REPLACE)
            win.unlock(0)
        comm.barrier()
        if comm.rank == 0:
            assert local.tolist() == [7.0, 7.0]
        win.free()

    spmd(2, main)


def test_put_with_target_datatype():
    def main(comm):
        win, local = _win(comm, 16)
        if comm.rank == 1:
            t = mpi.vector(4, 1, 4, mpi.DOUBLE).commit()
            win.lock(0)
            win.put(np.array([1.0, 2.0, 3.0, 4.0]), 0, target_datatype=t)
            win.unlock(0)
        comm.barrier()
        if comm.rank == 0:
            assert local[::4].tolist() == [1.0, 2.0, 3.0, 4.0]
            assert local[1] == 0.0
        win.free()

    spmd(2, main)


def test_get_with_origin_datatype():
    def main(comm):
        win, local = _win(comm, 8)
        if comm.rank == 0:
            local[:] = np.arange(8.0)
        comm.barrier()
        if comm.rank == 1:
            out = np.zeros(8)
            t = mpi.vector(4, 1, 2, mpi.DOUBLE).commit()
            # fetch first 4 doubles, scatter into every other slot
            win.lock(0, mpi.LOCK_SHARED)
            win.get(out, 0, target_datatype=mpi.contiguous(4, mpi.DOUBLE).commit(),
                    origin_datatype=t)
            win.unlock(0)
            assert out[::2].tolist() == [0.0, 1.0, 2.0, 3.0]
            assert out[1::2].tolist() == [0.0] * 4
        comm.barrier()
        win.free()

    spmd(2, main)


def test_heterogeneous_window_sizes_and_zero_size():
    def main(comm):
        n = 8 if comm.rank == 0 else 0
        local = np.zeros(n, dtype="f8")
        win = mpi.Win.create(comm, local if n else None)
        assert win.size_of(0) == 64
        assert win.size_of(1) == 0
        if comm.rank == 1:
            win.lock(0)
            win.put(np.ones(8), 0)
            win.unlock(0)
        comm.barrier()
        if comm.rank == 0:
            assert np.all(local == 1.0)
        win.free()

    spmd(2, main)


def test_out_of_range_access_raises():
    def main(comm):
        win, _ = _win(comm, 4)
        win.lock(0, mpi.LOCK_SHARED)
        with pytest.raises(RMARangeError):
            win.get(np.zeros(100), 0)
        win.unlock(0)
        win.free()

    spmd(1, main)


# ---------------------------------------------------------------------------
# epoch discipline
# ---------------------------------------------------------------------------


def test_op_outside_epoch_raises():
    def main(comm):
        win, _ = _win(comm)
        with pytest.raises(RMASyncError):
            win.put(np.zeros(4), 0)
        win.free()

    spmd(2, main)


def test_unlock_without_lock_raises():
    def main(comm):
        win, _ = _win(comm)
        with pytest.raises(RMASyncError):
            win.unlock(0)
        win.free()

    spmd(2, main)


def test_double_lock_same_window_raises():
    """MPI-2: one lock per window per process — the rule that forces
    ARMCI-MPI to stage transfers whose local buffer is also global."""

    def main(comm):
        win, _ = _win(comm)
        win.lock(0)
        with pytest.raises(RMASyncError):
            win.lock(1)
        win.unlock(0)
        win.free()

    spmd(2, main)


def test_free_with_open_epoch_raises():
    def main(comm):
        win, _ = _win(comm)
        if comm.rank == 0:
            win.lock(1)
            with pytest.raises((RMASyncError, mpi.RankFailedError)):
                win.free()
            win.unlock(1)
        else:
            with pytest.raises((RMASyncError, mpi.RankFailedError)):
                win.free()

    spmd(2, main, watchdog_s=0.3)


def test_exclusive_lock_mutual_exclusion():
    """Exclusive epochs on one target must serialise: increments never race."""

    def main(comm):
        win, local = _win(comm, 1)
        comm.barrier()
        for _ in range(25):
            win.lock(0, mpi.LOCK_EXCLUSIVE)
            out = np.zeros(1)
            win.get(out, 0)
            win.unlock(0)
            win.lock(0, mpi.LOCK_EXCLUSIVE)
            win.put(out + 1.0, 0)
            win.unlock(0)
        comm.barrier()
        # NOTE: get-then-put in separate epochs is NOT atomic (that is the
        # point of §V-D's mutexes) — so we only check a weaker invariant:
        if comm.rank == 0:
            assert 25 <= local[0] <= 25 * comm.size
        win.free()

    spmd(2, main)


def test_shared_then_exclusive_queueing():
    def main(comm):
        win, local = _win(comm, 4)
        comm.barrier()
        # all ranks take shared locks to read; then rank 0 writes exclusively
        win.lock(0, mpi.LOCK_SHARED)
        out = np.zeros(4)
        win.get(out, 0)
        win.unlock(0)
        comm.barrier()
        if comm.rank == 0:
            win.lock(0, mpi.LOCK_EXCLUSIVE)
            win.put(np.ones(4), 0)
            win.unlock(0)
        comm.barrier()
        win.lock(0, mpi.LOCK_SHARED)
        win.get(out, 0)
        win.unlock(0)
        assert np.all(out == 1.0)
        win.free()

    spmd(4, main)


# ---------------------------------------------------------------------------
# conflicting access detection (the MPI-2 'erroneous program' rules)
# ---------------------------------------------------------------------------


def test_overlapping_put_put_same_epoch_raises():
    def main(comm):
        win, _ = _win(comm)
        win.lock(0)
        win.put(np.ones(4), 0, target_offset=0)
        with pytest.raises(RMAConflictError):
            win.put(np.ones(4), 0, target_offset=16)  # bytes 16..48 overlap 0..32
        win.unlock(0)
        win.free()

    spmd(2, main)


def test_put_get_overlap_same_epoch_raises():
    def main(comm):
        win, _ = _win(comm)
        win.lock(0)
        win.put(np.ones(2), 0)
        with pytest.raises(RMAConflictError):
            win.get(np.zeros(2), 0)
        win.unlock(0)
        win.free()

    spmd(1, main)


def test_disjoint_ops_same_epoch_allowed():
    def main(comm):
        win, local = _win(comm)
        win.lock(0)
        win.put(np.ones(4), 0, target_offset=0)
        win.put(np.full(4, 2.0), 0, target_offset=32)
        out = np.zeros(4)
        win.get(out, 0, target_offset=64)
        win.unlock(0)
        win.free()

    spmd(1, main)


def test_same_op_accumulate_overlap_allowed():
    def main(comm):
        win, local = _win(comm, 4)
        win.lock(0, mpi.LOCK_SHARED)
        win.accumulate(np.ones(4), 0, op="MPI_SUM")
        win.accumulate(np.ones(4), 0, op="MPI_SUM")
        win.unlock(0)
        if comm.rank == 0:
            pass
        win.free()

    spmd(1, main)


def test_different_op_accumulate_overlap_raises():
    def main(comm):
        win, _ = _win(comm, 4)
        win.lock(0)
        win.accumulate(np.ones(4), 0, op="MPI_SUM")
        with pytest.raises(RMAConflictError):
            win.accumulate(np.ones(4), 0, op="MPI_PROD")
        win.unlock(0)
        win.free()

    spmd(1, main)


def test_cross_origin_shared_lock_conflict_raises():
    """Two origins with shared locks writing the same bytes is erroneous."""

    def main(comm):
        win, _ = _win(comm, 4)
        comm.barrier()
        if comm.rank == 0:
            win.lock(2, mpi.LOCK_SHARED)
            win.put(np.ones(4), 2)
            comm.barrier()  # hold epoch open while rank 1 collides
            comm.barrier()
            win.unlock(2)
        elif comm.rank == 1:
            win.lock(2, mpi.LOCK_SHARED)
            comm.barrier()
            with pytest.raises(RMAConflictError):
                win.put(np.full(4, 2.0), 2)
            comm.barrier()
            win.unlock(2)
        else:
            comm.barrier()
            comm.barrier()
        comm.barrier()
        win.free()

    spmd(3, main)


def test_cross_origin_same_op_accumulate_allowed():
    def main(comm):
        win, local = _win(comm, 4)
        comm.barrier()
        if comm.rank in (0, 1):
            win.lock(2, mpi.LOCK_SHARED)
            win.accumulate(np.ones(4), 2, op="MPI_SUM")
            win.unlock(2)
        comm.barrier()
        if comm.rank == 2:
            assert np.all(local == 2.0)
        win.free()

    spmd(3, main)


def test_strict_false_permits_conflicts():
    """Permissive mode models coherent systems (§V-E.1 last paragraph)."""

    def main(comm):
        win, _ = _win(comm, strict=False)
        win.lock(0)
        win.put(np.ones(4), 0)
        win.put(np.full(4, 2.0), 0)  # would raise under strict
        win.unlock(0)
        win.free()

    spmd(1, main)


# ---------------------------------------------------------------------------
# direct local access (the rule behind ARMCI's DLA extension)
# ---------------------------------------------------------------------------


def test_local_view_requires_exclusive_self_lock():
    def main(comm):
        win, _ = _win(comm)
        with pytest.raises(RMASyncError):
            win.local_view()
        win.lock(comm.rank, mpi.LOCK_SHARED)
        with pytest.raises(RMASyncError):
            win.local_view()  # shared is not enough
        win.unlock(comm.rank)
        win.lock(comm.rank, mpi.LOCK_EXCLUSIVE)
        view = win.local_view("f8")
        view[0] = 42.0
        win.unlock(comm.rank)
        win.free()

    spmd(2, main)


def test_local_view_nonstrict_allows_bare_access():
    def main(comm):
        win, _ = _win(comm, strict=False)
        view = win.local_view("f8")
        view[:] = 1.0
        win.free()

    spmd(1, main)


# ---------------------------------------------------------------------------
# deadlock: the §V-E.1 circular-lock hazard is REAL in this substrate
# ---------------------------------------------------------------------------


def test_circular_window_locks_deadlock():
    """Rank 0 locks winA@0 then winB@1 while rank 1 locks winB@1 then
    winA@0: a circular dependence between two windows. The naive
    implementation the paper warns about really deadlocks here."""

    def main(comm):
        a, _ = _win(comm)
        b, _ = _win(comm)
        comm.barrier()
        if comm.rank == 0:
            a.lock(0)
            comm.barrier()  # both hold their first lock
            b.lock(1)  # blocks forever
            b.unlock(1)
            a.unlock(0)
        else:
            b.lock(1)
            comm.barrier()
            a.lock(0)  # blocks forever
            a.unlock(0)
            b.unlock(1)

    with pytest.raises(mpi.ProgressDeadlockError):
        spmd(2, main, watchdog_s=0.3)


# ---------------------------------------------------------------------------
# MPI-3 gating and extensions (§VIII-B made concrete)
# ---------------------------------------------------------------------------


def test_mpi3_features_gated_off_by_default():
    def main(comm):
        win, _ = _win(comm)
        with pytest.raises(WinError):
            win.flush(0)
        with pytest.raises(WinError):
            win.lock_all()
        with pytest.raises(WinError):
            win.fetch_and_op(1, 0, 0)
        win.free()

    spmd(1, main)


def test_mpi3_flush_completes_get_mid_epoch():
    def main(comm):
        win, local = _win(comm, 4, mpi3=True)
        if comm.rank == 0:
            local[:] = 3.0
        comm.barrier()
        if comm.rank == 1:
            out = np.zeros(4)
            win.lock(0, mpi.LOCK_SHARED)
            win.get(out, 0)
            win.flush(0)
            assert np.all(out == 3.0), "flush must deliver without unlock"
            win.unlock(0)
        comm.barrier()
        win.free()

    spmd(2, main)


def test_mpi3_fetch_and_op_atomic_counter():
    def main(comm):
        win, local = _win(comm, 0, mpi3=True)
        counter = np.zeros(1, dtype="i8")
        cwin = mpi.Win.create(comm, counter if comm.rank == 0 else None, mpi3=True)
        comm.barrier()
        got = []
        for _ in range(10):
            cwin.lock(0, mpi.LOCK_SHARED)
            old = cwin.fetch_and_op(1, 0, 0, mpi.LONG, op="MPI_SUM")
            cwin.unlock(0)
            got.append(old)
        all_got = comm.allgather(got)
        flat = sorted(x for sub in all_got for x in sub)
        assert flat == list(range(10 * comm.size)), "fetch_and_add must hand out unique values"
        comm.barrier()
        win.free()
        cwin.free()

    spmd(3, main)


def test_mpi3_compare_and_swap():
    def main(comm):
        val = np.zeros(1, dtype="i8")
        win = mpi.Win.create(comm, val if comm.rank == 0 else None, mpi3=True)
        comm.barrier()
        win.lock(0, mpi.LOCK_SHARED)
        old = win.compare_and_swap(0, comm.rank + 100, 0, 0, mpi.LONG)
        win.unlock(0)
        winners = comm.allgather(old == 0)
        assert sum(winners) == 1, "exactly one CAS must win"
        comm.barrier()
        win.free()

    spmd(4, main)


def test_mpi3_lock_all_and_flush_all():
    def main(comm):
        win, local = _win(comm, 2, mpi3=True)
        local[:] = comm.rank
        comm.barrier()
        outs = [np.zeros(2) for _ in range(comm.size)]
        win.lock_all()
        for t in range(comm.size):
            win.get(outs[t], t)
        win.flush_all()
        for t in range(comm.size):
            assert np.all(outs[t] == t)
        win.unlock_all()
        comm.barrier()
        win.free()

    spmd(3, main)


def test_mpi3_rget_request_delivery():
    def main(comm):
        win, local = _win(comm, 2, mpi3=True)
        if comm.rank == 0:
            local[:] = 5.0
        comm.barrier()
        if comm.rank == 1:
            out = np.zeros(2)
            win.lock(0, mpi.LOCK_SHARED)
            req = win.rget(out, 0)
            req.wait()
            assert np.all(out == 5.0)
            win.unlock(0)
        comm.barrier()
        win.free()

    spmd(2, main)


def test_freed_window_rejects_ops():
    def main(comm):
        win, _ = _win(comm)
        win.free()
        with pytest.raises(WinError):
            win.lock(0)

    spmd(2, main)


# ---------------------------------------------------------------------------
# property test: the epoch conflict checker vs a naive oracle
# ---------------------------------------------------------------------------

from hypothesis import given, settings
from hypothesis import strategies as st


def _oracle_conflicts(ops):
    """Naive O(N^2) MPI-2 conflict oracle over (kind, opname, lo, hi)."""
    for i in range(len(ops)):
        k1, o1, lo1, hi1 = ops[i]
        for j in range(i):
            k2, o2, lo2, hi2 = ops[j]
            if lo1 < hi2 and lo2 < hi1:  # overlap
                if k1 == "get" and k2 == "get":
                    continue
                if k1 == "acc" and k2 == "acc" and o1 == o2:
                    continue
                return i  # first op index that conflicts
    return None


@st.composite
def _epoch_ops(draw):
    n = draw(st.integers(1, 12))
    ops = []
    for _ in range(n):
        kind = draw(st.sampled_from(["put", "get", "acc"]))
        opname = draw(st.sampled_from(["MPI_SUM", "MPI_PROD"])) if kind == "acc" else None
        lo = draw(st.integers(0, 12)) * 8
        ln = draw(st.integers(1, 4)) * 8
        ops.append((kind, opname, lo, lo + ln))
    return ops


@settings(max_examples=60, deadline=None)
@given(ops=_epoch_ops())
def test_epoch_conflict_checker_matches_oracle(ops):
    """The window's interval-coverage checker must agree exactly with a
    naive pairwise MPI-2 conflict oracle on random op sequences."""
    expected = _oracle_conflicts(ops)
    observed = {}

    def main(comm):
        local = np.zeros(160, dtype="f8")
        win = mpi.Win.create(comm, local)
        win.lock(0)
        try:
            for i, (kind, opname, lo, hi) in enumerate(ops):
                buf = np.zeros((hi - lo) // 8)
                try:
                    if kind == "put":
                        win.put(buf, 0, lo)
                    elif kind == "get":
                        win.get(buf, 0, lo)
                    else:
                        win.accumulate(buf, 0, lo, op=opname)
                except RMAConflictError:
                    observed["at"] = i
                    return
            observed["at"] = None
        finally:
            win.unlock(0)
            win.free()  # the early returns above must not leak the window

    spmd(1, main)
    assert observed["at"] == expected


def test_get_origin_datatype_out_of_bounds_raises():
    """The origin layout must fit inside the origin buffer — silently
    clamped writes would be data loss."""

    def main(comm):
        local = np.zeros(16, dtype="f8")
        win = mpi.Win.create(comm, local)
        out = np.zeros(2)  # 16 bytes, but the layout reaches byte 80
        t = mpi.vector(2, 1, 9, mpi.DOUBLE).commit()
        win.lock(0, mpi.LOCK_SHARED)
        with pytest.raises(mpi.ArgumentError):
            win.get(out, 0,
                    target_datatype=mpi.contiguous(2, mpi.DOUBLE).commit(),
                    origin_datatype=t)
        win.unlock(0)
        win.free()

    spmd(1, main)


# ---------------------------------------------------------------------------
# _IntervalSet: compaction threshold and single-interval fast paths
# ---------------------------------------------------------------------------


def test_interval_set_compaction_threshold_is_named_constant():
    """The class compacts at the module constant (docstring/constant drift
    regression: the docstring used to claim 32 while the code used 8)."""
    from repro.mpi.window import INTERVAL_COMPACT_AT, _IntervalSet

    assert _IntervalSet._COMPACT_AT == INTERVAL_COMPACT_AT
    assert "INTERVAL_COMPACT_AT" in _IntervalSet.__doc__
    assert "every 32" not in _IntervalSet.__doc__

    one = np.array([5], dtype=np.int64)
    iset = _IntervalSet()
    for i in range(INTERVAL_COMPACT_AT - 1):
        iset.add(np.array([i * 10], dtype=np.int64), one)
    assert len(iset._pending) == INTERVAL_COMPACT_AT - 1
    assert len(iset._cov_off) == 0
    iset.add(np.array([INTERVAL_COMPACT_AT * 10], dtype=np.int64), one)
    assert len(iset._pending) == 0  # folded into the compacted coverage
    assert len(iset._cov_off) > 0
    assert iset.count == INTERVAL_COMPACT_AT


def test_interval_set_single_interval_queries():
    """The scalar fast path must agree with interval semantics exactly:
    touching intervals do not overlap, one-byte intrusions do."""
    from repro.mpi.window import _IntervalSet

    iset = _IntervalSet()
    iset.add(np.array([100], dtype=np.int64), np.array([50], dtype=np.int64))

    def q(off, ln):
        return iset.overlaps(
            np.array([off], dtype=np.int64), np.array([ln], dtype=np.int64)
        )

    assert not q(0, 100)    # ends exactly at the start
    assert not q(150, 10)   # begins exactly at the end
    assert q(99, 2)         # one byte inside from the left
    assert q(149, 1)        # last byte
    assert q(0, 1000)       # engulfing
    # after compaction the same answers must hold against the coverage array
    for i in range(20):
        iset.add(np.array([1000 + 64 * i], dtype=np.int64),
                 np.array([32], dtype=np.int64))
    assert not q(150, 10)
    assert q(100, 1)
    assert q(1000 + 64 * 7, 5)
    assert not q(1000 + 64 * 7 + 32, 32)


def test_interval_set_multi_interval_query_against_pending():
    """Multi-segment queries still take the sorted path over pending
    batches; bounding-box rejection must not produce false negatives."""
    from repro.mpi.window import _IntervalSet

    iset = _IntervalSet()
    # an unsorted pending batch (traversal order != address order)
    iset.add(np.array([500, 100], dtype=np.int64),
             np.array([10, 10], dtype=np.int64))
    offs = np.array([700, 505], dtype=np.int64)
    lens = np.array([5, 2], dtype=np.int64)
    assert iset.overlaps(offs, lens)
    assert not iset.overlaps(np.array([200, 600], dtype=np.int64),
                             np.array([10, 10], dtype=np.int64))
