"""Property tests: the MPI-3 coalescing queue is semantically transparent.

The queue defers, reorders drain boundaries, and merges adjacent
operations — but none of that may be observable through the ARMCI
contract.  For any program of nonblocking puts/accs/gets interleaved
with waits and fences, the bytes left in the target's slab and the
bytes returned by every get must be identical to the eager mpi2
datapath, which issues each operation in its own epoch at call time.

Rank 0 drives the generated program against rank 1's slab (hypothesis
generates it on the pytest thread; the SPMD body only replays it, so
runs are deterministic).  Conflicting enqueues pre-drain inside the
queue, which is exactly what makes per-location program order — and
hence this equivalence — hold.
"""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.armci import Armci, ArmciConfig

from conftest import spmd

SLAB = 64
ACC_SLOTS = SLAB // 8


@st.composite
def _op(draw):
    kind = draw(st.sampled_from(["put", "put", "acc", "acc", "get", "wait", "fence"]))
    if kind == "put":
        off = draw(st.integers(0, SLAB - 1))
        ln = draw(st.integers(1, SLAB - off))
        return ("put", off, ln, draw(st.integers(0, 255)))
    if kind == "acc":
        slot = draw(st.integers(0, ACC_SLOTS - 1))
        n = draw(st.integers(1, ACC_SLOTS - slot))
        return ("acc", slot * 8, n, draw(st.integers(-5, 5)))
    if kind == "get":
        off = draw(st.integers(0, SLAB - 1))
        return ("get", off, draw(st.integers(1, SLAB - off)))
    if kind == "wait":
        return ("wait", draw(st.integers(0, 31)))
    return ("fence",)


_programs = st.lists(_op(), max_size=12)


def _put_bytes(seed: int, ln: int) -> np.ndarray:
    return ((np.arange(ln, dtype=np.int64) + seed) % 251).astype(np.uint8)


def _run_program(program, datapath: str, coalesce: int) -> dict:
    """Replay one generated program; returns final slab + every get."""
    result: dict = {}

    def main(comm):
        cfg = ArmciConfig(nb_coalesce_threshold=coalesce)
        a = Armci.init(comm, config=cfg, datapath=datapath)
        ptrs = a.malloc(SLAB)
        me = a.my_id
        a.barrier()
        if me == 0:
            handles: list = []
            gets: list[np.ndarray] = []
            for op in program:
                if op[0] == "put":
                    _, off, ln, seed = op
                    handles.append(a.nb_put(_put_bytes(seed, ln), ptrs[1] + off, ln))
                elif op[0] == "acc":
                    _, off, n, val = op
                    contrib = np.full(n, val, dtype=np.int64)
                    handles.append(a.nb_acc(contrib, ptrs[1] + off, 1.0, n * 8))
                elif op[0] == "get":
                    _, off, ln = op
                    buf = np.zeros(ln, dtype=np.uint8)
                    gets.append(buf)
                    handles.append(a.nb_get(ptrs[1] + off, buf, ln))
                elif op[0] == "wait":
                    if handles:
                        handles[op[1] % len(handles)].wait()
                else:
                    a.fence(1)
            a.wait_all(handles)
            assert all(h.test() for h in handles)
            result["gets"] = [g.copy() for g in gets]
        a.barrier()
        if me == 1:
            buf = a.access_begin(ptrs[1], SLAB)
            result["slab"] = buf.copy()
            a.access_end(ptrs[1])
        a.barrier()
        a.free(ptrs[me])

    spmd(2, main)
    return result


@settings(max_examples=15, deadline=None)
@given(program=_programs)
def test_deferred_and_coalesced_paths_match_eager_mpi2(program):
    eager = _run_program(program, "mpi2", 0)
    for label, coalesce in (("uncoalesced", 0), ("coalesced", SLAB)):
        got = _run_program(program, "mpi3", coalesce)
        assert (got["slab"] == eager["slab"]).all(), (
            f"{label} mpi3 left different target bytes for {program}"
        )
        assert len(got["gets"]) == len(eager["gets"])
        for i, (want, have) in enumerate(zip(eager["gets"], got["gets"])):
            assert (want == have).all(), (
                f"{label} mpi3 get #{i} returned different bytes for {program}"
            )


@settings(max_examples=15, deadline=None)
@given(program=_programs, threshold=st.integers(1, SLAB))
def test_any_coalesce_threshold_is_transparent(program, threshold):
    """Merging is an internal optimisation at every cap, not just 0/max."""
    baseline = _run_program(program, "mpi3", 0)
    got = _run_program(program, "mpi3", threshold)
    assert (got["slab"] == baseline["slab"]).all()
    for want, have in zip(baseline["gets"], got["gets"]):
        assert (want == have).all()
