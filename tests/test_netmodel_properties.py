"""Property tests for the LogGP cost models (monotonicity, sanity)."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.simtime import PLATFORMS, PathModel

_paths = [p for plat in PLATFORMS.values() for p in (plat.native, plat.mpi)]


@pytest.mark.parametrize("path", _paths, ids=lambda p: p.name)
def test_all_platform_paths_have_positive_primitives(path):
    assert path.xfer_time("get", 0) >= 0
    assert path.xfer_time("put", 1 << 20) > 0
    assert path.p2p_time(64) > 0
    assert path.collective_time("barrier", 0, 1024) > 0
    assert path.sync_time("lock") >= 0


@settings(max_examples=60, deadline=None)
@given(
    path=st.sampled_from(_paths),
    kind=st.sampled_from(["put", "get", "acc"]),
    nbytes=st.integers(0, 1 << 22),
    extra=st.integers(1, 1 << 20),
)
def test_time_monotone_in_bytes_within_regime(path, kind, nbytes, extra):
    """More bytes never cost less time, within one bandwidth regime."""
    a, b = nbytes, nbytes + extra
    # stay on one side of the piecewise-bandwidth threshold
    if a <= path.bw_threshold < b:
        b = path.bw_threshold
        if b <= a:
            return
    assert path.xfer_time(kind, b) >= path.xfer_time(kind, a)


@settings(max_examples=60, deadline=None)
@given(
    path=st.sampled_from(_paths),
    nbytes=st.integers(1, 1 << 20),
    nsegs=st.integers(1, 2048),
)
def test_segmented_never_cheaper_than_contiguous(path, nbytes, nsegs):
    assert path.xfer_time("get", nbytes, nsegments=nsegs) >= path.xfer_time(
        "get", nbytes, nsegments=1
    )


@settings(max_examples=60, deadline=None)
@given(path=st.sampled_from(_paths), nbytes=st.integers(0, 1 << 22))
def test_acc_never_cheaper_than_put(path, nbytes):
    assert path.xfer_time("acc", nbytes) >= path.xfer_time("put", nbytes)


@settings(max_examples=40, deadline=None)
@given(
    path=st.sampled_from(_paths),
    nbytes=st.integers(0, 1 << 16),
    p1=st.integers(2, 512),
    p2=st.integers(2, 512),
)
def test_collectives_monotone_in_ranks(path, nbytes, p1, p2):
    lo, hi = min(p1, p2), max(p1, p2)
    assert path.collective_time("barrier", nbytes, hi) >= path.collective_time(
        "barrier", nbytes, lo
    )


def test_with_overrides_returns_modified_copy():
    base = PLATFORMS["ib"].mpi
    faster = base.with_overrides(latency=base.latency / 2)
    assert faster.latency == base.latency / 2
    assert faster.bw_small == base.bw_small
    assert base.latency != faster.latency  # original untouched (frozen)


def test_invalid_pathmodel_rejected():
    with pytest.raises(ValueError):
        PathModel(
            name="bad", latency=-1, bw_small=1e9, bw_large=1e9,
            bw_threshold=1, acc_rate=1e9, seg_overhead=0, pack_rate=1e9,
        )
