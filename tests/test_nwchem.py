"""Tests for the NWChem CCSD(T) proxy: functional vs dense reference."""

from __future__ import annotations

import numpy as np
import pytest

from repro.armci import Armci
from repro.armci_native import NativeArmci
from repro.ga import GlobalArray, SharedCounter
from repro.nwchem import (
    CcsdDriver,
    CcsdProblem,
    TiledSpace,
    coupling_matrix,
    denominator_matrix,
    ring_ccd_dense,
    tiled_matmul,
    triples_energy,
    triples_energy_dense,
)

from conftest import spmd


def test_tiled_space():
    s = TiledSpace(10, 4)
    assert s.ntiles == 3
    assert [(t.lo, t.hi) for t in s] == [(0, 4), (4, 8), (8, 10)]
    assert len(list(s.pairs())) == 9
    assert len(list(s.triples())) == 27


def test_reference_converges():
    e, t, trace = ring_ccd_dense(2, 3, iterations=20)
    # geometric convergence: successive diffs shrink
    diffs = [abs(trace[i + 1] - trace[i]) for i in range(len(trace) - 1)]
    assert diffs[-1] < 1e-12
    assert e < 0  # correlation energy is negative (V*T/D with D<0)


def test_denominators_negative():
    d = denominator_matrix(3, 5)
    assert np.all(d < 0)


def test_coupling_symmetric_and_deterministic():
    v1 = coupling_matrix(2, 3)
    v2 = coupling_matrix(2, 3)
    np.testing.assert_array_equal(v1, v2)
    np.testing.assert_array_equal(v1, v1.T)


def test_tiled_matmul_matches_numpy():
    def main(comm):
        rt = Armci.init(comm)
        rng = np.random.default_rng(3)
        n, tile = 12, 5
        A, B = rng.random((n, n)), rng.random((n, n))
        ga_a = GlobalArray.create(rt, (n, n), name="A")
        ga_b = GlobalArray.create(rt, (n, n), name="B")
        ga_c = GlobalArray.create(rt, (n, n), name="C")
        if rt.my_id == 0:
            ga_a.put((0, 0), (n, n), A)
            ga_b.put((0, 0), (n, n), B)
            ga_c.put((0, 0), (n, n), np.zeros((n, n)))
        ga_c.sync()
        ctr = SharedCounter(rt)
        tiled_matmul(rt, ga_a, ga_b, ga_c, TiledSpace(n, tile), ctr, alpha=2.0)
        got = ga_c.get((0, 0), (n, n))
        np.testing.assert_allclose(got, 2.0 * A @ B, rtol=1e-12)
        ctr.destroy()
        for g in (ga_c, ga_b, ga_a):
            g.destroy()

    spmd(4, main)


@pytest.mark.parametrize("flavor", ["mpi", "native"])
def test_ccsd_driver_matches_reference(flavor):
    problem = CcsdProblem(no=2, nv=4, tile=3, iterations=6)

    def main(comm):
        rt = Armci.init(comm) if flavor == "mpi" else NativeArmci.init(comm)
        driver = CcsdDriver(rt, problem)
        e, trace = driver.solve()
        e_ref, t_ref, trace_ref = ring_ccd_dense(
            problem.no, problem.nv, problem.iterations
        )
        assert e == pytest.approx(e_ref, rel=1e-10)
        np.testing.assert_allclose(trace, trace_ref, rtol=1e-10)
        np.testing.assert_allclose(driver.amplitudes(), t_ref, rtol=1e-10)
        driver.destroy()

    spmd(4, main)


@pytest.mark.parametrize("flavor", ["mpi", "native"])
def test_triples_matches_dense(flavor):
    problem = CcsdProblem(no=2, nv=3, tile=2, iterations=5)

    def main(comm):
        rt = Armci.init(comm) if flavor == "mpi" else NativeArmci.init(comm)
        driver = CcsdDriver(rt, problem)
        driver.solve()
        et = triples_energy(rt, driver.t, driver.v, problem)
        t_ref = driver.amplitudes()
        v_ref = coupling_matrix(problem.no, problem.nv)
        et_ref = triples_energy_dense(
            t_ref, v_ref, problem.no, problem.nv, problem.tile
        )
        assert et == pytest.approx(et_ref, rel=1e-10)
        driver.destroy()

    spmd(3, main)


def test_ccsd_energy_independent_of_nproc_and_tile():
    """The distributed answer must not depend on decomposition."""
    problem_a = CcsdProblem(no=2, nv=4, tile=2, iterations=5)
    problem_b = CcsdProblem(no=2, nv=4, tile=5, iterations=5)
    energies = []

    for nproc, problem in ((2, problem_a), (5, problem_b)):
        out = {}

        def main(comm, problem=problem, out=out):
            rt = Armci.init(comm)
            driver = CcsdDriver(rt, problem)
            e, _ = driver.solve()
            out["e"] = e
            driver.destroy()

        spmd(nproc, main)
        energies.append(out["e"])
    assert energies[0] == pytest.approx(energies[1], rel=1e-10)
