"""Unit tests for the Fig. 6 analytic scaling model itself."""

from __future__ import annotations

import pytest

from repro.mpi.progress import MPI_ASYNC, MPI_POLLING, NATIVE_CHT
from repro.nwchem.model import (
    W5_NO,
    W5_NV,
    WorkloadModel,
    ccsd_time,
    fig6_series,
    stack_for,
    triples_time,
)
from repro.simtime import PLATFORMS


def test_w5_constants_match_paper():
    """§VII-C: no = 20 correlated occupied, nv = 435 virtual orbitals."""
    assert W5_NO == 20
    assert W5_NV == 435


def test_workload_counts_consistent():
    w = WorkloadModel()
    assert w.o_tiles == -(-w.no // w.t_o)
    assert w.v_tiles == -(-w.nv // w.t_v)
    assert w.ccsd_tasks == w.ccsd_iterations * (w.o_tiles**2) * (w.v_tiles**4)
    assert w.ccsd_flops > 1e14  # O(no^2 nv^4) at w5 scale
    assert w.t_flops > w.ccsd_flops / w.ccsd_iterations  # (T) >> one CCSD iter


def test_task_transfers_shapes():
    w = WorkloadModel()
    ccsd = w.ccsd_task_transfers()
    kinds = [k for k, _, _ in ccsd]
    assert kinds == ["get", "get", "acc"]
    t = w.t_task_transfers()
    assert all(k == "get" for k, _, _ in t), "(T) has no write-back phase"
    assert len(t) > 10


def test_stack_for_flavors():
    p = PLATFORMS["ib"]
    nat = stack_for(p, "native")
    mpi = stack_for(p, "mpi")
    assert not nat.uses_epochs and mpi.uses_epochs
    assert nat.progress is NATIVE_CHT and mpi.progress is MPI_ASYNC
    assert mpi.epoch_contention > nat.epoch_contention
    with pytest.raises(ValueError):
        stack_for(p, "hybrid")


def test_rmw_time_mpi2_much_larger():
    p = PLATFORMS["ib"]
    assert stack_for(p, "mpi").rmw_time() > 3 * stack_for(p, "native").rmw_time()


def test_strong_scaling_until_contention():
    """Time decreases with cores in the paper's plotted ranges."""
    for key, cores in (("ib", (192, 384)), ("bgp", (1024, 4096))):
        p = PLATFORMS[key]
        for flavor in ("native", "mpi"):
            assert ccsd_time(p, flavor, cores[1]) < ccsd_time(p, flavor, cores[0])


def test_comm_inflation_grows_superlinearly():
    s = stack_for(PLATFORMS["xe6"], "native")
    f1 = s.comm_inflation(1488)
    f2 = s.comm_inflation(2976)
    f4 = s.comm_inflation(5952)
    assert f4 - f2 > f2 - f1, "contention term must accelerate with scale"


def test_progress_override_changes_only_comm_terms():
    p = PLATFORMS["xt5"]
    base = ccsd_time(p, "mpi", 4096)
    poll = ccsd_time(p, "mpi", 4096, progress=MPI_POLLING)
    assert poll > base
    # and (T), being get-dominated, also inflates
    assert triples_time(p, "mpi", 4096, progress=MPI_POLLING) > triples_time(
        p, "mpi", 4096
    )


def test_fig6_series_structure():
    data = fig6_series(PLATFORMS["xe6"], [744, 1488], kind="triples")
    assert data["cores"] == [744, 1488]
    assert len(data["native_min"]) == 2 and len(data["mpi_min"]) == 2
    assert all(v > 0 for v in data["native_min"] + data["mpi_min"])


def test_custom_workload_scales_cost():
    small = WorkloadModel(no=10, nv=100, ccsd_iterations=5)
    big = WorkloadModel()
    p = PLATFORMS["ib"]
    assert ccsd_time(p, "mpi", 256, workload=small) < ccsd_time(
        p, "mpi", 256, workload=big
    )


def test_invalid_cores_raise():
    with pytest.raises(ValueError):
        triples_time(PLATFORMS["ib"], "native", 0)
