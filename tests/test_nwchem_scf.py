"""Tests for the SCF proxy stage (distributed vs dense reference)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.armci import Armci
from repro.armci_native import NativeArmci
from repro.mpi.errors import ArgumentError
from repro.nwchem.scf import ScfDriver, ScfProblem, core_hamiltonian, scf_dense

from conftest import spmd


def test_problem_validation():
    with pytest.raises(ArgumentError):
        ScfProblem(nbasis=4, nocc=0)
    with pytest.raises(ArgumentError):
        ScfProblem(nbasis=4, nocc=5)


def test_core_hamiltonian_symmetric_deterministic():
    p = ScfProblem(nbasis=6, nocc=2)
    h1, h2 = core_hamiltonian(p), core_hamiltonian(p)
    np.testing.assert_array_equal(h1, h2)
    np.testing.assert_array_equal(h1, h1.T)


def test_dense_scf_converges():
    p = ScfProblem(nbasis=8, nocc=3, iterations=30)
    _, d, energies = scf_dense(p)
    # idempotency-ish: D built from orthonormal occupied orbitals
    assert np.trace(d) == pytest.approx(2.0 * p.nocc)
    diffs = [abs(b - a) for a, b in zip(energies, energies[1:])]
    assert diffs[-1] < 1e-10


@pytest.mark.parametrize("flavor", ["mpi", "native"])
@pytest.mark.parametrize("nproc", [2, 4])
def test_distributed_scf_matches_dense(flavor, nproc):
    problem = ScfProblem(nbasis=8, nocc=3, iterations=8)

    def main(comm):
        rt = Armci.init(comm) if flavor == "mpi" else NativeArmci.init(comm)
        driver = ScfDriver(rt, problem)
        e, trace = driver.solve()
        e_ref, d_ref, trace_ref = scf_dense(problem)
        assert e == pytest.approx(e_ref, rel=1e-9)
        np.testing.assert_allclose(trace, trace_ref, rtol=1e-9)
        np.testing.assert_allclose(driver.density(), d_ref, rtol=1e-8, atol=1e-10)
        driver.destroy()

    spmd(nproc, main)


def test_scf_energy_independent_of_decomposition():
    problem = ScfProblem(nbasis=7, nocc=2, iterations=6)
    results = []
    for nproc in (1, 3):
        out = {}

        def main(comm, out=out):
            rt = Armci.init(comm)
            driver = ScfDriver(rt, problem)
            out["e"], _ = driver.solve()
            driver.destroy()

        spmd(nproc, main)
        results.append(out["e"])
    assert results[0] == pytest.approx(results[1], rel=1e-10)
