"""Regression tests for the RMA sanitizer: one seeded violation per rule
class, each paired with a clean counterpart that must stay silent.

Every violating program asserts three things: the *structured* exception
type, the machine-readable ``ViolationKind``, and that the exception is
still an instance of the plain MPI error class existing handlers key on.
The clean counterparts run the legal version of the same pattern and
assert the sanitizer recorded nothing — the per-rule half of the
zero-false-positive guarantee (``pytest --sanitize`` is the suite-wide
half).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.armci import Armci
from repro.armci.access_modes import AccessMode
from repro.mpi.errors import (
    ArgumentError,
    RMAConflictError,
    RMARangeError,
    RMASyncError,
)
from repro.mpi.runtime import Runtime
from repro.mpi.window import LOCK_EXCLUSIVE, LOCK_SHARED, Win
from repro.sanitizer import (
    CATALOG,
    ConflictViolationError,
    ModeViolationError,
    RangeViolationError,
    RmaSanitizer,
    SyncViolationError,
    ViolationKind,
)


def run_san(nproc, fn, *args, mode="raise", check_nonstrict=False):
    """Run ``fn(comm, *args)`` with a sanitizer installed; return it."""
    rt = Runtime(nproc, watchdog_s=0.4)
    rt.sanitizer = RmaSanitizer(mode=mode, check_nonstrict=check_nonstrict)
    results = rt.spmd(fn, *args)
    return rt.sanitizer, results


def expect_violation(exc_cls, kind, legacy_cls, nproc, fn, *args, **kw):
    """Assert ``fn`` raises the structured error with the given kind."""
    with pytest.raises(exc_cls) as ei:
        run_san(nproc, fn, *args, **kw)
    v = ei.value.violation
    assert v.kind is kind
    assert isinstance(ei.value, legacy_cls)
    # the catalog covers the kind and the message carries its section
    assert CATALOG[v.kind].section in str(ei.value)
    return v


# -- EPOCH: RMA op outside any access epoch (§III) --------------------------------


def _epoch_violation(comm):
    win, _ = Win.allocate(comm, 64)
    comm.barrier()
    if comm.rank == 0:
        win.put(np.ones(8, dtype=np.uint8), 1)  # no lock held  # repro: lint-ignore[epoch]


def _epoch_clean(comm):
    win, _ = Win.allocate(comm, 64)
    comm.barrier()
    if comm.rank == 0:
        win.lock(1)
        win.put(np.ones(8, dtype=np.uint8), 1)
        win.unlock(1)


def test_epoch_violation_detected():
    v = expect_violation(
        SyncViolationError, ViolationKind.EPOCH, RMASyncError, 2, _epoch_violation
    )
    assert v.rank == 0 and v.op == "put" and v.target == 1


def test_epoch_clean_counterpart():
    san, _ = run_san(2, _epoch_clean)
    assert san.violations == []


# -- LOCK_NESTING / LOCK_UNMATCHED: lock discipline (§III, §V-E.1) ----------------


def _nesting_violation(comm):
    win, _ = Win.allocate(comm, 64)
    comm.barrier()
    if comm.rank == 0:
        win.lock(0)
        win.lock(1)  # second lock on the same window  # repro: lint-ignore[lock-nesting]


def _nesting_clean(comm):
    win, _ = Win.allocate(comm, 64)
    comm.barrier()
    if comm.rank == 0:
        win.lock(0)
        win.unlock(0)
        win.lock(1)
        win.unlock(1)


def _unmatched_violation(comm):
    win, _ = Win.allocate(comm, 64)
    comm.barrier()
    if comm.rank == 0:
        win.unlock(1)  # never locked  # repro: lint-ignore[lock-unmatched]


def test_lock_nesting_violation_detected():
    v = expect_violation(
        SyncViolationError, ViolationKind.LOCK_NESTING, RMASyncError,
        2, _nesting_violation,
    )
    assert "one lock per window" in v.detail


def test_lock_nesting_clean_counterpart():
    san, _ = run_san(2, _nesting_clean)
    assert san.violations == []


def test_lock_unmatched_violation_detected():
    expect_violation(
        SyncViolationError, ViolationKind.LOCK_UNMATCHED, RMASyncError,
        2, _unmatched_violation,
    )


# -- CONFLICT: overlapping put/get within one epoch (§III) ------------------------


def _conflict_violation(comm):
    win, _ = Win.allocate(comm, 64)
    comm.barrier()
    if comm.rank == 0:
        win.lock(1)
        win.put(np.ones(8, dtype=np.uint8), 1)
        win.put(np.ones(8, dtype=np.uint8), 1, 4)  # overlaps [4, 8)


def _conflict_clean(comm):
    win, _ = Win.allocate(comm, 64)
    comm.barrier()
    if comm.rank == 0:
        win.lock(1)
        win.put(np.ones(8, dtype=np.uint8), 1)
        win.put(np.ones(8, dtype=np.uint8), 1, 8)  # disjoint
        win.unlock(1)


def test_conflict_violation_detected():
    v = expect_violation(
        ConflictViolationError, ViolationKind.CONFLICT, RMAConflictError,
        2, _conflict_violation,
    )
    assert v.ranges  # byte interval reported


def test_conflict_clean_counterpart():
    san, _ = run_san(2, _conflict_clean)
    assert san.violations == []


# -- ACC_INTERLEAVE: different reduction ops on one region (§III) -----------------


def _acc_interleave_violation(comm):
    win, _ = Win.allocate(comm, 64)
    comm.barrier()
    if comm.rank == 0:
        win.lock(1)
        win.accumulate(np.ones(4), 1, 0, op="MPI_SUM")
        win.accumulate(np.ones(4), 1, 0, op="MPI_MAX")  # same bytes, new op


def _acc_interleave_clean(comm):
    win, _ = Win.allocate(comm, 64)
    comm.barrier()
    if comm.rank == 0:
        win.lock(1)
        win.accumulate(np.ones(4), 1, 0, op="MPI_SUM")
        win.accumulate(np.ones(4), 1, 0, op="MPI_SUM")  # same op: atomic
        win.unlock(1)


def test_acc_interleave_violation_detected():
    expect_violation(
        ConflictViolationError, ViolationKind.ACC_INTERLEAVE, RMAConflictError,
        2, _acc_interleave_violation,
    )


def test_acc_interleave_clean_counterpart():
    san, _ = run_san(2, _acc_interleave_clean)
    assert san.violations == []


# -- LOCAL_ALIAS: origin buffer aliases the window's own memory (§V-E.1) ----------


def _local_alias_violation(comm):
    win, local = Win.allocate(comm, 64)
    comm.barrier()
    if comm.rank == 0:
        win.lock(1)
        win.put(local[:8], 1)  # origin IS this window's exposed memory


def _local_alias_clean(comm):
    win, local = Win.allocate(comm, 64)
    comm.barrier()
    if comm.rank == 0:
        win.lock(1)
        win.put(local[:8].copy(), 1)  # staged through a private buffer
        win.unlock(1)


def test_local_alias_violation_detected():
    v = expect_violation(
        ConflictViolationError, ViolationKind.LOCAL_ALIAS, RMAConflictError,
        2, _local_alias_violation,
    )
    assert "stage" in v.detail


def test_local_alias_clean_counterpart():
    san, _ = run_san(2, _local_alias_clean)
    assert san.violations == []


# -- LOCAL_LOAD_STORE: bare direct access to exposed memory (§III, §V-E) ----------


def _bare_local_violation(comm):
    win, _ = Win.allocate(comm, 64)
    comm.barrier()
    if comm.rank == 0:
        win.local_view()  # no exclusive self-lock  # repro: lint-ignore[local-load-store]


def _bare_local_clean(comm):
    win, _ = Win.allocate(comm, 64)
    comm.barrier()
    if comm.rank == 0:
        win.lock(0, LOCK_EXCLUSIVE)
        view = win.local_view()
        view[0] = 7
        win.unlock(0)


def test_local_load_store_violation_detected():
    expect_violation(
        SyncViolationError, ViolationKind.LOCAL_LOAD_STORE, RMASyncError,
        2, _bare_local_violation,
    )


def test_local_load_store_clean_counterpart():
    san, _ = run_san(2, _bare_local_clean)
    assert san.violations == []


# -- RANGE: datatype footprint outside the target region (§V-A) -------------------


def _range_violation(comm):
    win, _ = Win.allocate(comm, 64)
    comm.barrier()
    if comm.rank == 0:
        win.lock(1)
        win.put(np.ones(128, dtype=np.uint8), 1)  # 128 B into a 64 B region


def _range_clean(comm):
    win, _ = Win.allocate(comm, 64)
    comm.barrier()
    if comm.rank == 0:
        win.lock(1)
        win.put(np.ones(64, dtype=np.uint8), 1)
        win.unlock(1)


def test_range_violation_detected():
    v = expect_violation(
        RangeViolationError, ViolationKind.RANGE, RMARangeError,
        2, _range_violation,
    )
    assert v.ranges == ((0, 128),)


def test_range_clean_counterpart():
    san, _ = run_san(2, _range_clean)
    assert san.violations == []


# -- rmw atomics vs put/get: the window never checks these itself -----------------


def _rmw_conflict_violation(comm):
    win, _ = Win.allocate(comm, 64, mpi3=True)
    comm.barrier()
    if comm.rank == 0:
        out = np.zeros(1, dtype=np.int64)
        win.lock(1)
        win.fetch_and_op(1, 1, 0)
        win.get(out, 1)  # overlaps the atomic's slot in the same epoch


def _rmw_clean(comm):
    win, _ = Win.allocate(comm, 64, mpi3=True)
    comm.barrier()
    if comm.rank == 0:
        win.lock(1)
        win.fetch_and_op(1, 1, 0)
        win.fetch_and_op(2, 1, 0)  # atomics are mutually atomic
        win.compare_and_swap(3, 9, 1, 0)
        win.unlock(1)


def test_rmw_vs_get_conflict_detected():
    expect_violation(
        ConflictViolationError, ViolationKind.CONFLICT, RMAConflictError,
        2, _rmw_conflict_violation,
    )


def test_rmw_atomics_clean_counterpart():
    san, _ = run_san(2, _rmw_clean)
    assert san.violations == []


# -- ACCESS_MODE: op excluded by the declared GMR mode (§VIII-A) ------------------


def _mode_violation(comm):
    armci = Armci.init(comm)
    ptrs = armci.malloc(64)  # repro: lint-ignore[lint-leak] — the put below aborts the run
    armci.set_access_mode(ptrs[armci.my_id], AccessMode.READ_ONLY)
    if armci.my_id == 0:
        armci.put(np.ones(8, dtype=np.uint8), ptrs[1], 8)  # put on read-only


def _mode_clean(comm):
    armci = Armci.init(comm)
    ptrs = armci.malloc(64)
    armci.set_access_mode(ptrs[armci.my_id], AccessMode.READ_ONLY)
    buf = np.zeros(8, dtype=np.uint8)
    armci.get(ptrs[(armci.my_id + 1) % armci.nproc], buf, 8)  # gets allowed
    armci.set_access_mode(ptrs[armci.my_id], AccessMode.DEFAULT)
    armci.finalize()


def test_access_mode_violation_detected():
    v = expect_violation(
        ModeViolationError, ViolationKind.ACCESS_MODE, ArgumentError,
        2, _mode_violation,
    )
    assert "read_only" in v.detail


def test_access_mode_clean_counterpart():
    san, _ = run_san(2, _mode_clean)
    assert san.violations == []


# -- LOCK_WHILE_DLA and DLA: direct-local-access discipline (§V-E) ----------------


def _lock_while_dla_violation(comm):
    armci = Armci.init(comm)
    ptrs = armci.malloc(64)  # repro: lint-ignore[lint-leak] — the put below aborts the run
    armci.barrier()
    if armci.my_id == 0:
        armci.access_begin(ptrs[0], 8, np.int64)
        # communicating through the same window while DLA is open
        armci.put(np.ones(8, dtype=np.uint8), ptrs[1], 8)  # repro: lint-ignore[lock-while-dla]


def _lock_while_dla_clean(comm):
    armci = Armci.init(comm)
    ptrs = armci.malloc(64)
    armci.barrier()
    if armci.my_id == 0:
        view = armci.access_begin(ptrs[0], 8, np.int64)
        view[0] = 42
        armci.access_end(ptrs[0])
        armci.put(np.ones(8, dtype=np.uint8), ptrs[1], 8)
    armci.barrier()
    armci.finalize()


def test_lock_while_dla_violation_detected():
    v = expect_violation(
        SyncViolationError, ViolationKind.LOCK_WHILE_DLA, RMASyncError,
        2, _lock_while_dla_violation,
    )
    assert "direct-local-access" in v.detail


def test_lock_while_dla_clean_counterpart():
    san, _ = run_san(2, _lock_while_dla_clean)
    assert san.violations == []


def _dla_nested_violation(comm):
    armci = Armci.init(comm)
    ptrs = armci.malloc(64)  # repro: lint-ignore[lint-leak] — the nested begin aborts the run
    armci.barrier()
    if armci.my_id == 0:
        armci.access_begin(ptrs[0], 8, np.int64)
        armci.access_begin(ptrs[0], 8, np.int64)  # DLA epochs do not nest  # repro: lint-ignore[dla]


def _dla_unmatched_violation(comm):
    armci = Armci.init(comm)
    ptrs = armci.malloc(64)  # repro: lint-ignore[lint-leak] — the access_end aborts the run
    armci.barrier()
    if armci.my_id == 0:
        armci.access_end(ptrs[0])  # never began  # repro: lint-ignore[dla]


def _dla_clean(comm):
    armci = Armci.init(comm)
    ptrs = armci.malloc(64)
    armci.barrier()
    for _ in range(2):  # sequential epochs are fine, only nesting is not
        view = armci.access_begin(ptrs[armci.my_id], 8, np.int64)
        view[0] += 1
        armci.access_end(ptrs[armci.my_id])
    armci.barrier()
    armci.finalize()


def test_dla_nesting_violation_detected():
    expect_violation(
        SyncViolationError, ViolationKind.DLA, RMASyncError,
        2, _dla_nested_violation,
    )


def test_dla_unmatched_end_violation_detected():
    expect_violation(
        SyncViolationError, ViolationKind.DLA, RMASyncError,
        2, _dla_unmatched_violation,
    )


def test_dla_clean_counterpart():
    san, _ = run_san(2, _dla_clean)
    assert san.violations == []


# -- REQUEST / FLUSH and lock_all cycling: the gated MPI-3 surface (§VIII-B) ------


def _request_violation(comm):
    win, _ = Win.allocate(comm, 64, mpi3=True)
    comm.barrier()
    if comm.rank == 0:
        win.lock(1)
        win.rput(np.ones(8, dtype=np.uint8), 1)  # request never waited on  # repro: lint-ignore[request]
        win.unlock(1)


def _request_clean(comm):
    win, local = Win.allocate(comm, 64, mpi3=True)
    local[:] = comm.rank
    comm.barrier()
    if comm.rank == 0:
        out = np.zeros(8, dtype=np.uint8)
        win.lock(1)
        req = win.rput(np.ones(8, dtype=np.uint8), 1)
        req.wait()
        greq = win.rget(out, 1, target_offset=8)
        flag, _ = greq.test()  # test() completes eager requests too
        assert flag and np.all(out == 1)
        win.unlock(1)
    comm.barrier()


def test_request_completion_violation_detected():
    v = expect_violation(
        SyncViolationError, ViolationKind.REQUEST, RMASyncError,
        2, _request_violation,
    )
    assert v.rank == 0 and v.op == "unlock" and "rput/rget" in v.detail


def test_request_completion_clean_counterpart():
    san, _ = run_san(2, _request_clean)
    assert san.violations == []


def _flush_violation(comm):
    win, _ = Win.allocate(comm, 64, mpi3=True)
    comm.barrier()
    if comm.rank == 0:
        win.flush(1)  # no epoch open  # repro: lint-ignore[flush]


def _flush_all_violation(comm):
    win, _ = Win.allocate(comm, 64, mpi3=True)
    comm.barrier()
    if comm.rank == 0:
        win.flush_all()  # no epoch open  # repro: lint-ignore[flush]


def _lock_all_cycle_clean(comm):
    win, local = Win.allocate(comm, 64, mpi3=True)
    local[:] = comm.rank
    comm.barrier()
    out = np.zeros(8, dtype=np.uint8)
    win.lock_all()
    win.get(out, (comm.rank + 1) % comm.size)
    win.flush_all()
    req = win.rget(out, comm.rank)
    req.wait()
    win.flush(comm.rank)
    win.unlock_all()
    comm.barrier()


def test_flush_outside_epoch_detected():
    v = expect_violation(
        SyncViolationError, ViolationKind.FLUSH, RMASyncError, 2, _flush_violation
    )
    assert v.op == "flush" and v.target == 1


def test_flush_all_outside_epoch_detected():
    v = expect_violation(
        SyncViolationError, ViolationKind.FLUSH, RMASyncError, 2, _flush_all_violation
    )
    assert v.op == "flush_all" and v.target == -1


def test_lock_all_flush_cycle_clean():
    san, _ = run_san(3, _lock_all_cycle_clean)
    assert san.violations == []


def _lock_all_nesting_violation(comm):
    win, _ = Win.allocate(comm, 64, mpi3=True)
    comm.barrier()
    win.lock_all()  # repro: lint-ignore[lint-leak] — the nested lock_all aborts the run
    if comm.rank == 0:
        win.lock_all()  # lock_all does not nest  # repro: lint-ignore[lock-nesting]


def _unlock_all_unmatched_violation(comm):
    win, _ = Win.allocate(comm, 64, mpi3=True)
    comm.barrier()
    if comm.rank == 0:
        win.unlock_all()  # never opened  # repro: lint-ignore[lock-unmatched]


def test_lock_all_nesting_violation_detected():
    v = expect_violation(
        SyncViolationError, ViolationKind.LOCK_NESTING, RMASyncError,
        2, _lock_all_nesting_violation,
    )
    assert v.op == "lock_all"


def test_unlock_all_unmatched_violation_detected():
    v = expect_violation(
        SyncViolationError, ViolationKind.LOCK_UNMATCHED, RMASyncError,
        2, _unlock_all_unmatched_violation,
    )
    assert v.op == "unlock_all"


def test_request_pending_recorded_in_record_mode():
    san, _ = run_san(2, _request_violation, mode="record")
    kinds = [v.kind for v in san.violations]
    assert kinds.count(ViolationKind.REQUEST) == 1


# -- modes and gating --------------------------------------------------------------


def _nonstrict_conflict(comm):
    win, _ = Win.allocate(comm, 64, strict=False)
    comm.barrier()
    if comm.rank == 0:
        win.lock(1)
        win.put(np.ones(8, dtype=np.uint8), 1)
        win.put(np.full(8, 2, dtype=np.uint8), 1)  # overlap; relaxed window
        win.unlock(1)
    comm.barrier()


def test_record_mode_collects_without_raising():
    san, _ = run_san(2, _nonstrict_conflict, mode="record", check_nonstrict=True)
    kinds = {v.kind for v in san.violations}
    assert ViolationKind.CONFLICT in kinds


def test_check_nonstrict_raises_on_relaxed_window():
    with pytest.raises(ConflictViolationError) as ei:
        run_san(2, _nonstrict_conflict, check_nonstrict=True)
    assert ei.value.violation.kind is ViolationKind.CONFLICT


def test_nonstrict_windows_exempt_by_default():
    # relaxed windows model coherent shortcuts: conflicts are their right
    san, _ = run_san(2, _nonstrict_conflict)
    assert san.violations == []


# -- NB_PENDING: mpi3 queued op never reaching a completion point (§VIII-B) -------


def _nb_pending_violation(comm):
    a = Armci.init(comm, datapath="mpi3")
    ptrs = a.malloc(8)  # repro: lint-ignore[lint-leak]
    a.barrier()
    if a.my_id == 0:
        a.nb_put(np.ones(8, dtype=np.uint8), ptrs[1], 8)  # repro: lint-ignore[nb-pending]
        # a finalize that skipped every completion point: the audit must
        # report the op that never flushed
        a._nbq.audit_finalize()


def _nb_pending_clean(comm):
    a = Armci.init(comm, datapath="mpi3")
    ptrs = a.malloc(8)
    a.barrier()
    a.nb_put(np.ones(8, dtype=np.uint8), ptrs[(a.my_id + 1) % a.nproc], 8)  # repro: lint-ignore[nb-pending]
    a.finalize()  # the finalize barrier drains; the audit stays silent


def test_nb_pending_violation_detected():
    v = expect_violation(
        SyncViolationError, ViolationKind.NB_PENDING, RMASyncError,
        2, _nb_pending_violation,
    )
    assert "completion point" in v.detail


def test_nb_pending_clean_counterpart():
    san, _ = run_san(2, _nb_pending_clean)
    assert san.violations == []


def test_nb_ledger_tracks_enqueue_and_drain():
    counts: list[int] = []

    def body(comm):
        a = Armci.init(comm, datapath="mpi3")
        ptrs = a.malloc(16)
        a.barrier()
        if a.my_id == 0:
            san = a.world.runtime.sanitizer
            gmr = a.table.require(ptrs[1])
            a.nb_put(np.ones(8, dtype=np.uint8), ptrs[1], 8)  # repro: lint-ignore[nb-pending]
            a.nb_put(np.ones(8, dtype=np.uint8), ptrs[1] + 8, 8)  # repro: lint-ignore[nb-pending]
            counts.append(san.nb_pending_count(gmr.win, 0, 1))
            a.fence(1)
            counts.append(san.nb_pending_count(gmr.win, 0, 1))
        a.barrier()
        a.free(ptrs[a.my_id])

    run_san(2, body)
    assert counts == [2, 0]


def test_catalog_covers_every_kind():
    assert set(CATALOG) == set(ViolationKind)
    for entry in CATALOG.values():
        assert entry.section.startswith("§")
        assert entry.rule and entry.fix


def test_violation_str_mentions_kind_and_section():
    v = expect_violation(
        ConflictViolationError, ViolationKind.CONFLICT, RMAConflictError,
        2, _conflict_violation,
    )
    s = str(v)
    assert "[conflict]" in s and "§III" in s and "rank 0" in s


# -- zero-false-positive representative: a real staged workload, sanitized --------


@pytest.mark.sanitize
def test_staged_armci_workload_is_sanitizer_clean(run4):
    """ARMCI-MPI's own protocols must never trip the checker (marker form)."""

    def body(comm):
        armci = Armci.init(comm)
        ptrs = armci.malloc(64)
        counters = armci.malloc(8 if armci.my_id == 0 else 0)
        right = (armci.my_id + 1) % armci.nproc
        armci.put(np.full(8, 1.0), ptrs[right])
        armci.barrier()
        out = np.zeros(8)
        armci.get(ptrs[armci.my_id], out)
        armci.barrier()
        armci.acc(out, ptrs[0], scale=0.5)
        task = armci.rmw("fetch_and_add_long", counters[0], 1)
        armci.barrier()
        armci.finalize()
        return float(out.sum()), task

    results = run4(body)
    assert sorted(t for _, t in results) == [0, 1, 2, 3]
    assert all(s == 8.0 for s, _ in results)
