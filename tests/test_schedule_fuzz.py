"""Deterministic schedule fuzzer tests.

The properties under test, in order: (1) the same seed reproduces the
same run bit-identically (digest over trace + clocks + violations +
error); (2) the ordering-sensitive protocols of the paper — §V-D mutex
handoff, the two-epoch mutex-based RMW, §V-B GMR free leader election —
stay correct and sanitizer-clean under perturbed schedules; (3) a
genuinely schedule-dependent bug is *found* by a seed sweep and the
failing seed replays to the identical failure; (4) deadlock detection
under the schedule is deterministic, not watchdog-based.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.armci import Armci
from repro.mpi.errors import MPIError, ProgressDeadlockError
from repro.mpi.progress import DeterministicSchedule
from repro.mpi.runtime import Runtime
from repro.mpi.window import LOCK_SHARED, Win
from repro.sanitizer.fuzz import format_reports, fuzz_schedules, run_schedule
from repro.simtime.clock import SimClock

INCS = 4


def _mutex_counter(comm):
    """Non-atomic increment protected by a §V-D queueing mutex."""
    armci = Armci.init(comm)
    ptrs = armci.malloc(8 if armci.my_id == 0 else 0)
    mutexes = armci.create_mutexes(1)
    armci.barrier()
    buf = np.zeros(1, dtype=np.int64)
    for _ in range(INCS):
        mutexes.lock(0, 0)
        armci.get(ptrs[0], buf, 8)
        buf[0] += 1
        armci.put(buf, ptrs[0], 8)
        mutexes.unlock(0, 0)
    armci.barrier()
    total = None
    if armci.my_id == 0:
        view = armci.access_begin(ptrs[0], 8, np.int64)
        total = int(view[0])
        armci.access_end(ptrs[0])
    armci.barrier()
    mutexes.destroy()
    armci.finalize()
    return total


def _rmw_counter(comm):
    armci = Armci.init(comm)
    ptrs = armci.malloc(8 if armci.my_id == 0 else 0)
    armci.barrier()
    for _ in range(INCS):
        armci.rmw("fetch_and_add_long", ptrs[0], 1)
    armci.barrier()
    total = None
    if armci.my_id == 0:
        view = armci.access_begin(ptrs[0], 8, np.int64)
        total = int(view[0])
        armci.access_end(ptrs[0])
    armci.barrier()
    armci.finalize()
    return total


def _shared_lock_race(comm):
    """Two origins put the same bytes under concurrent shared locks.

    Whether the epochs overlap — i.e. whether this erroneous program's
    conflict is *observable* — depends purely on the interleaving, which
    is exactly what the fuzzer exists to explore.
    """
    win, _ = Win.allocate(comm, 64)
    comm.barrier()
    if comm.rank < 2:
        win.lock(2, LOCK_SHARED)
        win.put(np.full(8, comm.rank, dtype=np.uint8), 2)
        win.unlock(2)


def _circular_recv(comm):
    comm.recv(source=(comm.rank + 1) % comm.size)  # nobody ever sends


# -- reproducibility ---------------------------------------------------------------


def test_same_seed_is_bit_identical():
    a = run_schedule(_mutex_counter, 3, 7)
    b = run_schedule(_mutex_counter, 3, 7)
    assert a.ok and b.ok
    assert a.digest == b.digest
    assert a.events == b.events and a.yields == b.yields
    assert a.max_clock == b.max_clock


def test_different_seeds_explore_different_interleavings():
    base = run_schedule(_mutex_counter, 3, 7)
    others = [run_schedule(_mutex_counter, 3, s) for s in (8, 9, 10)]
    assert any(r.digest != base.digest for r in others)
    # ... but every interleaving preserves mutual exclusion
    assert all(r.results[0] == 3 * INCS for r in [base] + others)


def test_jitter_reproduces_and_perturbs_clocks():
    a = run_schedule(_rmw_counter, 3, 5, jitter_frac=0.25)
    b = run_schedule(_rmw_counter, 3, 5, jitter_frac=0.25)
    assert a.digest == b.digest


# -- protocol correctness under perturbed schedules --------------------------------


def test_mutex_handoff_correct_under_fuzz():
    for r in fuzz_schedules(_mutex_counter, 3, nschedules=4):
        assert r.ok, r.error
        assert not r.violations
        assert r.results[0] == 3 * INCS


def test_mutex_based_rmw_correct_under_fuzz():
    for r in fuzz_schedules(_rmw_counter, 3, nschedules=4):
        assert r.ok, r.error
        assert not r.violations
        assert r.results[0] == 3 * INCS


def test_gmr_free_leader_election_under_fuzz():
    def body(comm):
        armci = Armci.init(comm)
        for _ in range(2):
            # zero-size slices force §V-B's NULL-pointer leader election
            ptrs = armci.malloc(8 if armci.my_id % 2 else 0)
            armci.barrier()
            armci.free(ptrs[armci.my_id] if armci.my_id % 2 else None)
        armci.finalize()
        return "ok"

    for r in fuzz_schedules(body, 4, nschedules=3):
        assert r.ok, r.error
        assert r.results == ["ok"] * 4


# -- finding and replaying a schedule-dependent failure ----------------------------


def test_seed_sweep_finds_conflict_and_replays_it_exactly():
    reports = fuzz_schedules(_shared_lock_race, 3, nschedules=40)
    failing = [r for r in reports if not r.ok]
    passing = [r for r in reports if r.ok]
    # the race is schedule-dependent: some interleavings expose it ...
    assert failing, "no seed exposed the shared-lock race"
    # ... and serialized ones hide it
    assert passing, "every seed failed; the race is not schedule-dependent"
    first = failing[0]
    assert "conflict" in first.error.lower()
    replay = run_schedule(_shared_lock_race, 3, first.seed)
    assert replay.digest == first.digest
    assert replay.error == first.error
    assert replay.violations == first.violations


def test_format_reports_carries_replay_hint():
    reports = fuzz_schedules(_circular_recv, 2, nschedules=2)
    text = format_reports(reports)
    assert "2 schedule(s): 0 ok, 2 failed" in text
    assert "replay with --seed 0 --schedules 1" in text


# -- deterministic deadlock detection ----------------------------------------------


def test_deadlock_detected_deterministically():
    a = run_schedule(_circular_recv, 2, 1)
    b = run_schedule(_circular_recv, 2, 1)
    assert not a.ok and not b.ok
    assert "ProgressDeadlockError" in a.error
    assert "seed 1" in a.error  # the error names its reproducer
    assert a.digest == b.digest


def test_deadlock_event_is_in_the_trace():
    rt = Runtime(2)
    sched = DeterministicSchedule(3)
    sched.begin_run(rt)
    with pytest.raises(MPIError) as ei:
        rt.spmd(_circular_recv)
    assert isinstance(ei.value, ProgressDeadlockError)
    assert ("deadlock",) in sched.trace


# -- plumbing ----------------------------------------------------------------------


def test_schedule_parameter_validation():
    with pytest.raises(ValueError):
        DeterministicSchedule(0, switch_prob=1.5)
    with pytest.raises(ValueError):
        DeterministicSchedule(0, jitter_frac=-0.1)


def test_schedule_is_single_use():
    sched = DeterministicSchedule(0)
    sched.begin_run(Runtime(2))
    with pytest.raises(RuntimeError):
        sched.begin_run(Runtime(2))


def test_fuzz_point_is_noop_off_schedule_and_off_rank():
    rt = Runtime(2)
    rt.fuzz_point("op")  # no schedule installed
    sched = DeterministicSchedule(0)
    sched.begin_run(rt)
    rt.fuzz_point("op")  # schedule installed, but not an SPMD rank thread


def test_results_and_digest_shape():
    r = run_schedule(lambda comm: comm.rank, 3, 0)
    assert r.ok and r.results == [0, 1, 2]
    assert len(r.digest) == 64
    assert r.error is None and r.violations == []
    assert "ok" in str(r)


def test_simclock_jitter_hook_is_clamped_nonnegative():
    clock = SimClock()
    clock.jitter = lambda kind, s: 1.0
    assert clock.advance(2.0) == 3.0
    clock.jitter = lambda kind, s: -100.0  # negative extras never rewind
    assert clock.advance(1.0) == 4.0
    clock.jitter = None
    assert clock.advance(0.5) == 4.5
