"""CI seed-sweep gate and the failing-seeds regression corpus.

Two guarantees on every tier-1 run:

* a widening sweep of seeded deterministic schedules over the three
  §V-D protocol scenarios (mutex handoff, mutex-based RMW, GMR free
  with NULL slices) stays clean under the RMA sanitizer — set
  ``REPRO_SWEEP_SEEDS`` to widen it in CI;
* every entry of ``tests/corpus/failing_seeds.json`` — historical
  ``(seed, plan)`` fault scenarios — replays *bit-identically* (two
  runs, equal digests) and reproduces its recorded outcome, either a
  clean completion or the named typed exception.

``python -m repro.sanitize --sweep`` is the command-line spelling of
the same gate.
"""

from __future__ import annotations

import os

import pytest

from repro.faults import SCENARIOS
from repro.faults.corpus import DEFAULT_CORPUS, load_corpus, replay_entry
from repro.sanitizer.cli import main as sanitize_main
from repro.sanitizer.fuzz import fuzz_schedules

SWEEP_SEEDS = int(os.environ.get("REPRO_SWEEP_SEEDS", "6"))


@pytest.mark.parametrize("name", sorted(SCENARIOS))
def test_seed_sweep_is_clean(name):
    reports = fuzz_schedules(
        SCENARIOS[name], 3, nschedules=SWEEP_SEEDS, base_seed=0
    )
    bad = [r for r in reports if not r.ok or r.violations]
    assert not bad, [(r.seed, r.error, r.violations) for r in bad]
    # distinct seeds genuinely explore distinct interleavings
    assert len({r.digest for r in reports}) == len(reports)


def test_corpus_exists_and_is_well_formed():
    entries = load_corpus()
    assert DEFAULT_CORPUS.name == "failing_seeds.json"
    assert len(entries) >= 5
    names = [e["name"] for e in entries]
    assert len(set(names)) == len(names), "duplicate corpus entry names"
    # the corpus must cover every scenario and both outcome kinds
    assert {e["scenario"] for e in entries} == set(SCENARIOS)
    assert "ok" in {e["expect"] for e in entries}
    assert any(e["expect"] != "ok" for e in entries)


@pytest.mark.parametrize(
    "entry", load_corpus(), ids=lambda e: e["name"]
)
def test_corpus_entry_replays_bit_identically(entry):
    passed, detail = replay_entry(entry)
    assert passed, f"{entry['name']}: {detail}"


def test_sweep_cli_exits_clean(capsys):
    rc = sanitize_main(["--sweep", "--nproc", "3", "--schedules", "2"])
    out = capsys.readouterr().out
    assert rc == 0
    assert "corpus: replaying" in out
    assert "FAIL" not in out
