"""Unit tests for the simtime package: clocks, path models, registration."""

from __future__ import annotations

import pytest

from repro.simtime import (
    PLATFORMS,
    MPITimingPolicy,
    PathModel,
    RegistrationModel,
    RegistrationState,
    SimClock,
    elapsed_by_kind,
    get_platform,
)


def test_clock_advance_and_log():
    c = SimClock(log_limit=10)
    c.advance(1.5, kind="a", nbytes=10)
    c.advance(0.5, kind="b")
    assert c.now == 2.0
    agg = elapsed_by_kind(c.events)
    assert agg == {"a": 1.5, "b": 0.5}


def test_clock_negative_charge_raises():
    c = SimClock()
    with pytest.raises(ValueError):
        c.advance(-1.0)


def test_clock_sync_to_only_moves_forward():
    c = SimClock()
    c.advance(5.0)
    c.sync_to(3.0)
    assert c.now == 5.0
    c.sync_to(8.0)
    assert c.now == 8.0


def _pm(**kw) -> PathModel:
    defaults = dict(
        name="t",
        latency=1e-6,
        bw_small=1e9,
        bw_large=1e9,
        bw_threshold=1 << 20,
        acc_rate=1e9,
        seg_overhead=1e-7,
        pack_rate=2e9,
    )
    defaults.update(kw)
    return PathModel(**defaults)


def test_pathmodel_contiguous_cost():
    p = _pm()
    assert p.xfer_time("put", 0) == pytest.approx(1e-6)
    assert p.xfer_time("put", 10**6) == pytest.approx(1e-6 + 1e-3)


def test_pathmodel_bandwidth_threshold():
    p = _pm(bw_small=2e9, bw_large=1e9, bw_threshold=1 << 16)
    assert p.wire_bw(1 << 16) == 2e9
    assert p.wire_bw((1 << 16) + 1) == 1e9
    # the Cray XT effect: achieved bandwidth DROPS past the threshold,
    # even though bigger messages normally amortise latency better
    assert p.bandwidth("get", 1 << 17) < p.bandwidth("get", 1 << 16)


def test_pathmodel_accumulate_extra_cost():
    p = _pm()
    assert p.xfer_time("acc", 4096) > p.xfer_time("put", 4096)


def test_pathmodel_segments_add_pack_cost():
    p = _pm()
    one = p.xfer_time("put", 4096, nsegments=1)
    many = p.xfer_time("put", 4096, nsegments=64)
    assert many == pytest.approx(one + 64 * 1e-7 + 4096 / 2e9)


def test_pathmodel_inflight_overhead():
    p = _pm(inflight_overhead=1e-8)
    first = p.xfer_time("put", 64, op_index=0)
    later = p.xfer_time("put", 64, op_index=5)
    assert later < first


def test_pathmodel_queue_penalty():
    p = _pm(epoch_queue_penalty=1e-7)
    assert p.xfer_time("put", 64, op_index=100) == pytest.approx(
        p.xfer_time("put", 64, op_index=0) + 1e-5
    )


def test_pathmodel_sync_times():
    p = _pm(lock_cost=2e-6, unlock_cost=3e-6)
    assert p.sync_time("lock") == 2e-6
    assert p.sync_time("unlock") == 3e-6
    assert p.sync_time("flush") == 1.5e-6
    assert p.sync_time("other") == 0.0


def test_pathmodel_validation():
    with pytest.raises(ValueError):
        _pm(bw_small=-1)
    with pytest.raises(ValueError):
        _pm().xfer_time("put", -1)


def test_pathmodel_bandwidth_monotone_in_size():
    p = _pm()
    sizes = [2**k for k in range(0, 24, 2)]
    bws = [p.bandwidth("get", s) for s in sizes]
    assert all(b2 > b1 for b1, b2 in zip(bws, bws[1:]))


def test_timing_policy_adapter():
    p = _pm(lock_cost=1e-6)
    pol = MPITimingPolicy(p)
    assert pol.rma_sync_cost("lock") == 1e-6
    assert pol.rma_op_cost("put", 100, 1) == p.xfer_time("put", 100)
    assert pol.p2p_cost(100) == p.p2p_time(100)
    assert pol.collective_cost("barrier", 0, 16) == pytest.approx(
        4 * p.p2p_time(0)
    )


def test_collective_alltoall_scales_linearly():
    p = _pm()
    assert p.collective_time("alltoall", 64, 32) >= 31 * p.p2p_time(64)


# ---------------------------------------------------------------------------
# registration model (Fig. 5 machinery)
# ---------------------------------------------------------------------------


def test_registration_paths_ordering():
    m = RegistrationModel()
    n = 1 << 16  # 64 KiB, above the eager threshold
    fastest = m.armci_get_armci_buffer(n)
    assert m.mpi_get_touched(n) == pytest.approx(fastest)
    assert m.armci_get_mpi_buffer(n) > fastest
    assert m.mpi_get_untouched(n) > m.armci_get_mpi_buffer(n)


def test_registration_eager_threshold_behaviour():
    m = RegistrationModel()
    just_below = m.mpi_get_untouched(m.eager_threshold)
    just_above = m.mpi_get_untouched(m.eager_threshold + 1)
    # crossing two pages switches from bounce-copy to on-demand pinning,
    # with a visible jump (the Fig. 5 dip)
    assert just_above > just_below * 2


def test_registration_cost_scales_with_pages():
    m = RegistrationModel()
    assert m.registration_cost(1 << 20) > m.registration_cost(1 << 12)


def test_registration_state_caches():
    m = RegistrationModel()
    st = RegistrationState(m)
    n = 1 << 16
    first = st.transfer_cost(1, n)
    second = st.transfer_cost(1, n)
    assert second < first  # cached registration
    assert st.registered_buffers == 1


def test_registration_state_evicts_lru():
    m = RegistrationModel()
    st = RegistrationState(m, capacity_pages=32)
    big = 16 * 4096
    a = st.transfer_cost(1, big)
    st.transfer_cost(2, big)  # evicts nothing yet (16+16 = 32 pages)
    st.transfer_cost(3, big)  # evicts buffer 1
    again = st.transfer_cost(1, big)
    assert again == pytest.approx(a)  # re-registration cost paid again


def test_registration_state_validation():
    with pytest.raises(ValueError):
        RegistrationState(RegistrationModel(), capacity_pages=0)


# ---------------------------------------------------------------------------
# platforms / Table II
# ---------------------------------------------------------------------------


def test_all_four_platforms_present():
    assert set(PLATFORMS) == {"bgp", "ib", "xt5", "xe6"}


def test_get_platform_unknown_raises():
    with pytest.raises(KeyError):
        get_platform("summit")


def test_table2_values():
    """The Table II system characteristics, verbatim from the paper."""
    rows = {p.key: p.table2_row() for p in PLATFORMS.values()}
    assert rows["bgp"] == (
        "IBM Blue Gene/P (Intrepid)", "40,960", "1 x 4", "2 GB", "3D Torus", "IBM MPI",
    )
    assert rows["ib"] == (
        "Cluster (Fusion)", "320", "2 x 4", "36 GB", "InfiniBand QDR", "MVAPICH2 1.6",
    )
    assert rows["xt5"] == (
        "Cray XT5 (Jaguar PF)", "18,688", "2 x 6", "16 GB", "Seastar 2+", "Cray MPI",
    )
    assert rows["xe6"] == (
        "Cray XE6 (Hopper II)", "6,392", "2 x 12", "32 GB", "Gemini", "Cray MPI",
    )


def test_cores_per_node():
    assert PLATFORMS["bgp"].cores_per_node == 4
    assert PLATFORMS["ib"].cores_per_node == 8
    assert PLATFORMS["xt5"].cores_per_node == 12
    assert PLATFORMS["xe6"].cores_per_node == 24


def test_progress_config_validation():
    from repro.mpi.progress import ProgressConfig

    with pytest.raises(ValueError):
        ProgressConfig(mode="magic")
    with pytest.raises(ValueError):
        ProgressConfig(core_fraction_lost=1.5)
    with pytest.raises(ValueError):
        ProgressConfig(target_delay_factor=0.5)


def test_progress_presets():
    from repro.mpi.progress import MPI_ASYNC, MPI_POLLING, NATIVE_CHT

    assert NATIVE_CHT.mode == "cht" and NATIVE_CHT.core_fraction_lost > 0
    assert MPI_ASYNC.target_delay_factor == 1.0
    assert MPI_POLLING.target_delay_factor > 1.0
