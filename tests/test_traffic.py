"""Service-traffic harness: front-end units, oracles, faults, replay.

Covers the :mod:`repro.traffic` stack bottom-up — the shared
:class:`repro.backoff.BackoffPolicy`, the admission queue and circuit
breaker, the stale-segment sweeper — then the end-to-end contracts:
every workload's serial-numpy oracle must verify fault-free AND with a
seeded kill landing mid-service, and a faulted seed must replay with a
bit-identical shed/retry/violation trace.
"""

from __future__ import annotations

import os
import random
import time

import numpy as np
import pytest

from repro.backoff import LOCK_RETRY, STALL_STEPS, BackoffPolicy
from repro.faults.plan import FaultPlan
from repro.faults.proc import sweep_stale_segments
from repro.traffic import (
    AdmissionQueue,
    CircuitBreaker,
    Overloaded,
    Request,
    TrafficConfig,
    run_traffic,
)
from repro.traffic.workloads import make_workload

pytestmark = pytest.mark.traffic

NPROC = 3
SEED = 5
#: per-scenario (size, kill point): the kill lands mid-service and the
#: harness must absorb it (probed; pinned here as regression anchors)
FAULTED = {"stencil": (12, 45), "worksteal": (18, 45), "bfs": (24, 45)}


# ---------------------------------------------------------------------------
# BackoffPolicy
# ---------------------------------------------------------------------------


def test_backoff_curve_grows_geometrically_and_caps():
    pol = BackoffPolicy(base=1.0, factor=2.0, cap=8.0, jitter=1.0)
    assert [pol.delay(a) for a in range(5)] == [1.0, 2.0, 4.0, 8.0, 8.0]


def test_backoff_uncapped_and_steps_floor():
    pol = BackoffPolicy(base=0.25, factor=2.0, cap=None, jitter=1.0)
    assert pol.delay(10) == 0.25 * 2**10
    # steps rounds up and never returns 0 — retries always progress
    assert pol.steps(0) == 1
    assert pol.steps(3) == 2
    assert STALL_STEPS.steps(4) == 16


def test_backoff_jitter_draws_exactly_one_uniform():
    pol = BackoffPolicy(base=0.05, factor=2.0, cap=1.0, jitter=0.5)
    a, b = random.Random(42), random.Random(42)
    got = pol.delay(3, a)
    want = min(1.0, 0.05 * (b.uniform(0.5, 1.0) * 2**3))
    assert got == want
    # both rngs consumed the same single draw
    assert a.random() == b.random()


def test_lock_retry_matches_runtime_backoff_formula():
    """LOCK_RETRY is the Runtime.backoff curve: 50 ms doubled, 1 s cap,
    equal jitter — bit-identical to the historical inline formula."""
    a, b = random.Random(7), random.Random(7)
    for attempt in range(8):
        want = min(1.0, 0.05 * (b.uniform(0.5, 1.0) * 2**attempt))
        assert LOCK_RETRY.delay(attempt, a) == want


def test_backoff_rejects_bad_parameters():
    with pytest.raises(ValueError):
        BackoffPolicy(base=0.0)
    with pytest.raises(ValueError):
        BackoffPolicy(factor=0.5)
    with pytest.raises(ValueError):
        BackoffPolicy(jitter=0.0)
    with pytest.raises(ValueError):
        BackoffPolicy().delay(-1)


# ---------------------------------------------------------------------------
# Admission queue + circuit breaker
# ---------------------------------------------------------------------------


def _req(rid, arrival=0, deadline=10, not_before=0):
    return Request(rid, ("p", rid), arrival, deadline, not_before=not_before)


def test_admission_queue_sheds_typed_overloaded_when_full():
    q = AdmissionQueue(2)
    q.offer(_req(1))
    q.offer(_req(2))
    assert q.free == 0
    with pytest.raises(Overloaded):
        q.offer(_req(3))
    # requeue (retry path) deliberately bypasses the capacity check
    q.requeue(_req(4))
    assert len(q) == 3


def test_admission_queue_expiry_and_backoff_holds():
    q = AdmissionQueue(4)
    q.offer(_req(1, arrival=0, deadline=2))
    q.offer(_req(2, arrival=0, deadline=9))
    q.offer(_req(3, arrival=0, deadline=9, not_before=5))
    expired = q.expire(3)
    assert [r.rid for r in expired] == [1]
    # rid 3 is backing off until tick 5: pop_ready skips it
    assert q.pop_ready(3).rid == 2
    assert q.pop_ready(3) is None
    assert q.pop_ready(5).rid == 3
    assert not len(q)


def test_circuit_breaker_trips_cools_probes_and_closes():
    br = CircuitBreaker(threshold=2, cooldown=3)
    assert br.allow(0)
    br.record_failure(0)
    assert br.state == "closed"
    br.record_failure(1)
    assert br.state == "open"
    # open: everything is shed until the cooldown elapses
    assert not br.allow(2)
    assert br.allow(4)            # half-open probe
    assert not br.allow(4)        # one probe per tick
    br.record_failure(4)          # probe failed: reopen
    assert br.state == "open"
    assert br.allow(7)
    br.record_success(7)
    assert br.state == "closed"
    # a fatal error trips it instantly, regardless of the failure count
    br.trip(8)
    assert br.state == "open"
    assert ("open", 8) in br.transitions


# ---------------------------------------------------------------------------
# stale shared-memory segment sweep
# ---------------------------------------------------------------------------


def test_stale_segment_sweep_is_idempotent(tmp_path):
    old = tmp_path / "repro-dead-seg"
    old.write_bytes(b"x" * 16)
    stale = time.time() - 3600
    os.utime(old, (stale, stale))
    fresh = tmp_path / "repro-live-seg"
    fresh.write_bytes(b"y" * 16)
    other = tmp_path / "not-ours"
    other.write_bytes(b"z")
    removed = sweep_stale_segments(stale_after_s=600.0, shm_dir=tmp_path)
    assert removed == ["repro-dead-seg"]
    assert not old.exists() and fresh.exists() and other.exists()
    # double sweep: nothing left to remove, nothing else touched
    assert sweep_stale_segments(stale_after_s=600.0, shm_dir=tmp_path) == []
    assert fresh.exists() and other.exists()


def test_stale_segment_sweep_missing_dir_is_noop(tmp_path):
    assert sweep_stale_segments(shm_dir=tmp_path / "nope") == []


# ---------------------------------------------------------------------------
# workload oracles, fault-free
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("scenario", sorted(FAULTED))
def test_workload_completes_and_verifies_fault_free(scenario):
    size = FAULTED[scenario][0]
    cfg = TrafficConfig(scenario=scenario, seed=SEED, size=size)
    r = run_traffic(cfg, NPROC, SEED)
    assert r.ok and r.verified, (r.error, r.violations)
    assert not r.violations
    assert r.recoveries == 0
    assert r.completed > 0 and r.goodput > 0
    assert r.p99_ticks >= r.p50_ticks >= 1


def test_stencil_oracle_matches_jacobi_sweep():
    """The workload's internal oracle is the serial ghost-cell stencil."""
    from repro.ga.ghosts import jacobi_sweep

    w = make_workload("stencil", seed=3, size=8)
    base = w._base()
    assert np.array_equal(w._oracle(), jacobi_sweep(np.pad(base, 1)))


def test_bfs_oracle_is_exact_fixed_point():
    w = make_workload("bfs", seed=3, size=16)
    lv = w._oracle()
    adj = w._graph()
    assert lv[0] == 0
    for u, nbrs in enumerate(adj):
        for v in nbrs:
            assert abs(int(lv[u]) - int(lv[v])) <= 1 or (
                lv[u] >= 2**31 and lv[v] >= 2**31
            )


def test_tiny_queue_sheds_with_typed_accounting():
    cfg = TrafficConfig(
        scenario="stencil", seed=SEED, size=12,
        offered=5, service_rate=1, queue_capacity=1,
    )
    r = run_traffic(cfg, NPROC, SEED)
    assert r.ok and r.verified
    assert r.shed["queue_full"] > 0
    assert r.shed_rate > 0
    # shed tiles are re-offered later, so the oracle still verifies fully
    assert r.completed == 12 // 2


def test_run_traffic_rejects_wall_clock_pacing():
    cfg = TrafficConfig(scenario="stencil", tick_sleep_s=0.01)
    with pytest.raises(ValueError, match="proc backend only"):
        run_traffic(cfg, NPROC, SEED)


# ---------------------------------------------------------------------------
# workload oracles under a seeded mid-service kill + replay contract
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("scenario", sorted(FAULTED))
def test_workload_recovers_and_verifies_under_kill(scenario):
    size, point = FAULTED[scenario]
    cfg = TrafficConfig(scenario=scenario, seed=SEED, size=size)
    plan = FaultPlan(seed=SEED).kill(1, point)
    r = run_traffic(cfg, NPROC, SEED, plan=plan)
    assert r.ok and r.verified, (r.error, r.violations)
    assert r.recoveries >= 1
    live = [x for x in r.results if x is not None]
    assert len(live) == NPROC - 1
    assert all(x["nproc_final"] == NPROC - 1 for x in live)
    assert all(
        any(ev[0] == "recovered" for ev in x["events"]) for x in live
    )


@pytest.mark.parametrize("scenario", sorted(FAULTED))
def test_faulted_seed_replays_bit_identically(scenario):
    size, point = FAULTED[scenario]
    cfg = TrafficConfig(scenario=scenario, seed=SEED, size=size)
    plan = FaultPlan(seed=SEED).kill(1, point)
    a = run_traffic(cfg, NPROC, SEED, plan=plan)
    b = run_traffic(cfg, NPROC, SEED, plan=plan)
    assert a.digest == b.digest
    assert a.schedule_digest == b.schedule_digest
    assert a.shed == b.shed and a.retries == b.retries


def test_different_schedule_seeds_explore_distinct_traces():
    cfg = TrafficConfig(scenario="worksteal", seed=SEED, size=18)
    digests = {run_traffic(cfg, NPROC, s).schedule_digest for s in range(4)}
    assert len(digests) == 4
